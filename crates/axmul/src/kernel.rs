//! The multiplication kernel abstraction.
//!
//! A [`MulKernel`] performs one unsigned 8x8 multiplication. The quantized
//! inference engine in `axquant` is generic over this trait, which is how
//! an accurate DNN becomes an AxDNN: same network, different kernel.

/// One unsigned 8-bit multiplication, possibly approximate.
///
/// Implementors must be cheap to call (this sits in the innermost MAC
/// loop) and `Sync` so evaluation can be parallelized over images.
pub trait MulKernel: Sync {
    /// Multiplies two 8-bit unsigned operands.
    fn mul(&self, a: u8, b: u8) -> u16;

    /// A short display name for reports.
    fn name(&self) -> &str;

    /// The raw 64Ki LUT behind this kernel, indexed `(a << 8) | b`, if it
    /// has one. Backends use this to run a monomorphic table-read inner
    /// loop instead of a trait call per MAC.
    #[inline]
    fn lut_table(&self) -> Option<&[u16]> {
        None
    }

    /// Whether this kernel is the builtin exact multiplier, letting
    /// backends select the `a * b` fast path.
    #[inline]
    fn is_exact(&self) -> bool {
        false
    }

    /// Multiplies sign-magnitude operands: `|a| * |b|` through the kernel
    /// with the sign applied afterwards. `mag_a`/`mag_b` must be ≤ 255.
    #[inline]
    fn mul_signed_mag(&self, sign_negative: bool, mag_a: u8, mag_b: u8) -> i32 {
        let p = self.mul(mag_a, mag_b) as i32;
        if sign_negative {
            -p
        } else {
            p
        }
    }
}

/// The exact (builtin) multiplier; the `ACC`/`1JFF` reference behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactMul;

impl MulKernel for ExactMul {
    #[inline]
    fn mul(&self, a: u8, b: u8) -> u16 {
        a as u16 * b as u16
    }

    fn name(&self) -> &str {
        "exact"
    }

    #[inline]
    fn is_exact(&self) -> bool {
        true
    }
}

impl<K: MulKernel + ?Sized> MulKernel for &K {
    #[inline]
    fn mul(&self, a: u8, b: u8) -> u16 {
        (**self).mul(a, b)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    #[inline]
    fn lut_table(&self) -> Option<&[u16]> {
        (**self).lut_table()
    }

    #[inline]
    fn is_exact(&self) -> bool {
        (**self).is_exact()
    }
}

/// The execution strategy a GEMM loop should use for a kernel.
///
/// A [`MulKernel`] is a trait object-friendly abstraction, but a trait
/// call per MAC defeats vectorization and inlining. `MulBackend` is
/// resolved *once per layer* and lets the inner loop monomorphize:
/// the exact kernel becomes a plain `a * b`, a [`MulLut`](crate::MulLut)
/// becomes one bounds-check-free table read, and anything else falls back
/// to the generic trait call.
pub enum MulBackend<'a, K: ?Sized> {
    /// The builtin exact multiply (`a as u16 * b as u16`).
    Exact,
    /// A raw 64Ki table indexed `(a << 8) | b`.
    ///
    /// Invariant: [`MulBackend::of`] only constructs this variant for
    /// tables with exactly `2^16` entries — hot loops rely on it to
    /// elide bounds checks for `u8`-derived indices.
    Table(&'a [u16]),
    /// Any other kernel, dispatched through [`MulKernel::mul`].
    Generic(&'a K),
}

// Manual impls: derives would wrongly require `K: Copy` / `K: Debug`,
// but the variants only hold references.
impl<K: ?Sized> Clone for MulBackend<'_, K> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<K: ?Sized> Copy for MulBackend<'_, K> {}

impl<K: ?Sized> std::fmt::Debug for MulBackend<'_, K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MulBackend::Exact => write!(f, "MulBackend::Exact"),
            MulBackend::Table(_) => write!(f, "MulBackend::Table(..)"),
            MulBackend::Generic(_) => write!(f, "MulBackend::Generic(..)"),
        }
    }
}

impl<'a, K: MulKernel + ?Sized> MulBackend<'a, K> {
    /// Classifies a kernel into its fastest execution strategy.
    ///
    /// A kernel advertising a LUT of the wrong size (a buggy foreign
    /// [`MulKernel::lut_table`] impl) falls back to [`MulBackend::Generic`]
    /// rather than violating the `Table` length invariant — the table
    /// path elides bounds checks and must never see a short slice.
    pub fn of(kernel: &'a K) -> Self {
        if kernel.is_exact() {
            MulBackend::Exact
        } else {
            match kernel.lut_table() {
                Some(table) if table.len() == 1 << 16 => MulBackend::Table(table),
                _ => MulBackend::Generic(kernel),
            }
        }
    }

    /// Multiplies through the selected strategy (used by tests and
    /// non-hot-loop callers; hot loops match on the variant instead).
    #[inline]
    pub fn mul(&self, a: u8, b: u8) -> u16 {
        match self {
            MulBackend::Exact => a as u16 * b as u16,
            MulBackend::Table(t) => t[((a as usize) << 8) | b as usize],
            MulBackend::Generic(k) => k.mul(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_mul_is_exact_everywhere() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(ExactMul.mul(a, b), a as u16 * b as u16);
            }
        }
    }

    #[test]
    fn signed_magnitude_helper_applies_sign() {
        assert_eq!(ExactMul.mul_signed_mag(false, 10, 12), 120);
        assert_eq!(ExactMul.mul_signed_mag(true, 10, 12), -120);
        assert_eq!(ExactMul.mul_signed_mag(true, 0, 12), 0);
    }

    #[test]
    // The borrow is the point: it instantiates the blanket `impl MulKernel
    // for &K` forwarding.
    #[allow(clippy::needless_borrows_for_generic_args)]
    fn kernel_usable_through_reference() {
        fn takes_kernel<K: MulKernel>(k: K) -> u16 {
            k.mul(3, 7)
        }
        let k = ExactMul;
        assert_eq!(takes_kernel(&k), 21);
        assert_eq!(takes_kernel(k), 21);
        assert_eq!(k.name(), "exact");
    }

    #[test]
    fn exact_backend_is_exact_variant() {
        assert!(matches!(MulBackend::of(&ExactMul), MulBackend::Exact));
        // The forwarding impl preserves the classification.
        let r = &ExactMul;
        assert!(matches!(MulBackend::of(&r), MulBackend::Exact));
        assert_eq!(MulBackend::of(&ExactMul).mul(13, 11), 143);
    }

    #[test]
    fn generic_backend_falls_back_to_trait_call() {
        struct Weird;
        impl MulKernel for Weird {
            fn mul(&self, a: u8, b: u8) -> u16 {
                (a as u16 * b as u16) | 1
            }
            fn name(&self) -> &str {
                "weird"
            }
        }
        let be = MulBackend::of(&Weird);
        assert!(matches!(be, MulBackend::Generic(_)));
        assert_eq!(be.mul(4, 4), 17);
    }

    #[test]
    fn short_lut_claims_fall_back_to_generic() {
        // A buggy foreign impl advertising an undersized table must not
        // reach the bounds-check-free Table path.
        struct ShortLut(Vec<u16>);
        impl MulKernel for ShortLut {
            fn mul(&self, a: u8, b: u8) -> u16 {
                a as u16 * b as u16
            }
            fn name(&self) -> &str {
                "short"
            }
            fn lut_table(&self) -> Option<&[u16]> {
                Some(&self.0)
            }
        }
        let k = ShortLut(vec![0u16; 16]);
        let be = MulBackend::of(&k);
        assert!(matches!(be, MulBackend::Generic(_)));
        assert_eq!(be.mul(200, 200), 40000);
    }
}
