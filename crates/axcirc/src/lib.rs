//! Gate-level combinational circuits for approximate arithmetic.
//!
//! This crate is the hardware substrate of the reproduction. The paper
//! evaluates DNN accelerators built from *approximate multipliers*
//! (EvoApprox8b). Those multipliers are gate-level artifacts, so we model
//! them as gate-level artifacts:
//!
//! * [`netlist`] — a compact combinational netlist IR with a 64-way
//!   bit-parallel simulator (one `u64` word simulates 64 input vectors at
//!   once), which makes exhaustive 2^16-point characterization of an 8x8
//!   multiplier essentially free.
//! * [`cells`] — exact and approximate adder cells. The approximate cells
//!   are behavioral models in the spirit of the approximate mirror-adder
//!   literature; each documents its full truth table and error pattern.
//! * [`adders`] — ripple-carry adders with per-bit cell selection and
//!   lower-part-OR (LOA) construction.
//! * [`multiplier`] — a parameterized unsigned array multiplier generator
//!   with the approximation knobs used to emulate the EvoApprox8b parts:
//!   column truncation (with optional compensation), LOA columns,
//!   approximate full-adder columns and partial-product row perforation.
//! * [`analysis`] — exhaustive error metrics (MAE, WCE, bias, error rate)
//!   plus unit-gate area / critical-path delay / switching-power proxies,
//!   i.e. the EvoApprox-style datasheet quantities.
//! * [`faults`] — single stuck-at fault injection into the word-parallel
//!   pass (forced all-0/all-1 node words), faulted exhaustive LUT
//!   extraction and a testability/observability report.
//!
//! # Examples
//!
//! Build an exact 8x8 multiplier and check one product:
//!
//! ```
//! use axcirc::multiplier::{ApproxSpec, ArrayMultiplier};
//!
//! let exact = ArrayMultiplier::new(8, ApproxSpec::exact()).build();
//! let lut = exact.exhaustive_u16();
//! assert_eq!(lut[(200 << 8) | 17] as u32, 200 * 17);
//! ```
//!
//! The simulator is 64-way bit-parallel: [`Netlist::eval_words`] takes one
//! `u64` per input, where bit `l` of every word forms lane `l`'s input
//! vector, and returns one `u64` per output. Sixty-four products of the
//! multiplier above in a single pass:
//!
//! ```
//! use axcirc::multiplier::{ApproxSpec, ArrayMultiplier};
//!
//! let exact = ArrayMultiplier::new(8, ApproxSpec::exact()).build();
//! // Lane l computes (l+1) * 3: operand a varies per lane, b is constant.
//! let mut words = vec![0u64; 16];
//! for lane in 0..64u64 {
//!     let (a, b) = (lane + 1, 3u64);
//!     for k in 0..8 {
//!         words[k] |= (a >> k & 1) << lane; // a on inputs 0..8
//!         words[8 + k] |= (b >> k & 1) << lane; // b on inputs 8..16
//!     }
//! }
//! let out = exact.eval_words(&words);
//! for lane in 0..64u64 {
//!     let product: u64 = (0..16).map(|k| (out[k] >> lane & 1) << k).sum();
//!     assert_eq!(product, (lane + 1) * 3);
//! }
//! ```
//!
//! Stuck-at faults are forced inside the same pass ([`faults`]):
//!
//! ```
//! use axcirc::faults::{Fault, FaultSet, StuckAt};
//! use axcirc::multiplier::{ApproxSpec, ArrayMultiplier};
//!
//! let exact = ArrayMultiplier::new(8, ApproxSpec::exact()).build();
//! // Tie the product's most significant bit high.
//! let msb = exact.outputs()[15];
//! let faults = FaultSet::single(Fault::new(msb, StuckAt::One));
//! let faulty = exact.exhaustive_u16_with_faults(&faults);
//! assert_eq!(faulty[(3 << 8) | 2], (2 * 3) | (1 << 15));
//! // The empty fault set replays the fault-free table bit for bit.
//! let clean = exact.exhaustive_u16_with_faults(&FaultSet::empty());
//! assert_eq!(clean, exact.exhaustive_u16());
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod adders;
pub mod analysis;
pub mod cells;
pub mod export;
pub mod faults;
pub mod multiplier;
pub mod netlist;
pub mod signed_mul;

pub use analysis::{AreaReport, ErrorMetrics};
pub use cells::ApproxCell;
pub use faults::{Fault, FaultSet, StuckAt, TestabilityReport};
pub use multiplier::{ApproxSpec, ArrayMultiplier};
pub use netlist::{Netlist, NodeId};
pub use signed_mul::BaughWooleyMultiplier;
