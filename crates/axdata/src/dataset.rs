//! Labeled image datasets.

use axtensor::Tensor;
use axutil::rng::Rng;

/// An in-memory labeled image dataset.
///
/// Images are `[C, H, W]` tensors with values in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    images: Vec<Tensor>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Assembles a dataset.
    ///
    /// # Panics
    ///
    /// Panics if images and labels disagree in length, a label is out of
    /// range, or image shapes are inconsistent.
    pub fn new(
        name: impl Into<String>,
        images: Vec<Tensor>,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Self {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        assert!(num_classes > 0);
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        if let Some(first) = images.first() {
            assert!(
                images.iter().all(|im| im.dims() == first.dims()),
                "inconsistent image shapes"
            );
        }
        Dataset {
            name: name.into(),
            images,
            labels,
            num_classes,
        }
    }

    /// The dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The `i`-th image.
    pub fn image(&self, i: usize) -> &Tensor {
        &self.images[i]
    }

    /// The `i`-th label.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Iterates over `(image, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tensor, usize)> + '_ {
        self.images.iter().zip(self.labels.iter().copied())
    }

    /// A new dataset containing the examples at `indices` (cloned).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            name: self.name.clone(),
            images: indices.iter().map(|&i| self.images[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
        }
    }

    /// The first `n` examples (or all, if fewer).
    pub fn take(&self, n: usize) -> Dataset {
        let idx: Vec<usize> = (0..n.min(self.len())).collect();
        self.select(&idx)
    }

    /// Splits into `(front, back)` at `at`.
    pub fn split_at(&self, at: usize) -> (Dataset, Dataset) {
        let at = at.min(self.len());
        let front: Vec<usize> = (0..at).collect();
        let back: Vec<usize> = (at..self.len()).collect();
        (self.select(&front), self.select(&back))
    }

    /// A deterministically shuffled copy.
    pub fn shuffled(&self, seed: u64) -> Dataset {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        Rng::seed_from_u64(seed).shuffle(&mut idx);
        self.select(&idx)
    }

    /// Deterministic mini-batch index lists.
    pub fn batch_indices(&self, batch: usize, seed: u64) -> Vec<Vec<usize>> {
        assert!(batch > 0, "batch size must be positive");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        Rng::seed_from_u64(seed).shuffle(&mut idx);
        idx.chunks(batch).map(|c| c.to_vec()).collect()
    }

    /// Returns a copy with every image zero-padded (centred) to
    /// `target_h x target_w`. Channels are unchanged. Used to feed
    /// 28x28 MNIST images to 32x32-input architectures in the
    /// transferability study.
    ///
    /// # Panics
    ///
    /// Panics if the target is smaller than the current image size.
    pub fn padded_to(&self, target_h: usize, target_w: usize) -> Dataset {
        let images = self
            .images
            .iter()
            .map(|im| {
                let [c, h, w] = *im.dims() else {
                    panic!("padded_to expects [C, H, W] images")
                };
                assert!(target_h >= h && target_w >= w, "target smaller than image");
                let (oy, ox) = ((target_h - h) / 2, (target_w - w) / 2);
                let mut out = Tensor::zeros(&[c, target_h, target_w]);
                for ch in 0..c {
                    for y in 0..h {
                        for x in 0..w {
                            out.set(&[ch, oy + y, ox + x], im.get(&[ch, y, x]));
                        }
                    }
                }
                out
            })
            .collect();
        Dataset {
            name: format!("{}-pad{}x{}", self.name, target_h, target_w),
            images,
            labels: self.labels.clone(),
            num_classes: self.num_classes,
        }
    }

    /// Per-class example counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let images = (0..n)
            .map(|i| Tensor::full(&[1, 2, 2], i as f32 / n as f32))
            .collect();
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new("toy", images, labels, 3)
    }

    #[test]
    fn construction_and_access() {
        let d = toy(9);
        assert_eq!(d.len(), 9);
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.label(4), 1);
        assert_eq!(d.class_counts(), vec![3, 3, 3]);
        assert_eq!(d.iter().count(), 9);
    }

    #[test]
    fn select_take_split() {
        let d = toy(10);
        let s = d.select(&[0, 9, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.label(1), 9 % 3);
        assert_eq!(d.take(4).len(), 4);
        assert_eq!(d.take(99).len(), 10);
        let (a, b) = d.split_at(7);
        assert_eq!((a.len(), b.len()), (7, 3));
    }

    #[test]
    fn shuffle_is_deterministic_permutation() {
        let d = toy(20);
        let s1 = d.shuffled(5);
        let s2 = d.shuffled(5);
        assert_eq!(s1, s2);
        let mut sums: Vec<f32> = s1.iter().map(|(im, _)| im.sum()).collect();
        let mut orig: Vec<f32> = d.iter().map(|(im, _)| im.sum()).collect();
        sums.sort_by(f32::total_cmp);
        orig.sort_by(f32::total_cmp);
        assert_eq!(sums, orig);
    }

    #[test]
    fn batches_cover_everything_once() {
        let d = toy(10);
        let batches = d.batch_indices(3, 0);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn padding_centres_and_preserves_values() {
        let mut im = Tensor::zeros(&[1, 2, 2]);
        im.set(&[0, 0, 0], 1.0);
        im.set(&[0, 1, 1], 0.5);
        let d = Dataset::new("p", vec![im], vec![0], 1);
        let p = d.padded_to(4, 4);
        let pi = p.image(0);
        assert_eq!(pi.dims(), &[1, 4, 4]);
        assert_eq!(pi.get(&[0, 1, 1]), 1.0);
        assert_eq!(pi.get(&[0, 2, 2]), 0.5);
        assert_eq!(pi.get(&[0, 0, 0]), 0.0);
        assert_eq!(pi.sum(), 1.5);
    }

    #[test]
    #[should_panic(expected = "smaller than image")]
    fn padding_to_smaller_rejected() {
        let d = Dataset::new("p", vec![Tensor::zeros(&[1, 4, 4])], vec![0], 1);
        let _ = d.padded_to(2, 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_rejected() {
        let _ = Dataset::new("x", vec![Tensor::zeros(&[1, 1, 1])], vec![5], 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_rejected() {
        let _ = Dataset::new("x", vec![Tensor::zeros(&[1, 1, 1])], vec![], 3);
    }
}
