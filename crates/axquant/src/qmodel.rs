//! The int8 inference engine with pluggable multipliers.

use axdata::Dataset;
use axmul::kernel::{ExactMul, MulKernel};
use axnn::layer::Layer;
use axnn::model::Sequential;
use axtensor::stats::MaxAbs;
use axtensor::Tensor;
use axutil::{parallel, AxError};

use crate::placement::Placement;
use crate::qlevel::QLevel;

/// Quantized weights of one conv/dense layer, stored sign/magnitude so
/// magnitudes can be fed straight to an unsigned 8x8 multiplier — the
/// paper's configuration ("state-of-the-art *unsigned* approximate
/// multipliers").
#[derive(Debug, Clone, PartialEq)]
struct QWeights {
    sign: Vec<i8>, // +1 or -1
    mag: Vec<u8>,  // |w| quantized, <= 127
    bias_q: Vec<i32>,
    /// requant multiplier `s_w * s_in / s_out`; `None` for the final layer
    /// (output dequantized to f32 instead).
    requant: Option<f32>,
    /// dequantization scale `s_w * s_in` for the final layer.
    dequant: f32,
    /// largest activation code of the output (`2^a - 1` as f32).
    act_qmax: f32,
}

impl QWeights {
    fn build(
        weight: &Tensor,
        bias: &Tensor,
        in_scale: f32,
        out_scale: Option<f32>,
        level: QLevel,
    ) -> Self {
        let wp = level.weight_params(weight.max_abs());
        let wmax = level.weight_qmax();
        let q: Vec<i8> = weight
            .data()
            .iter()
            .map(|&v| (v / wp.scale()).round().clamp(-wmax as f32, wmax as f32) as i8)
            .collect();
        let sign: Vec<i8> = q.iter().map(|&v| if v < 0 { -1 } else { 1 }).collect();
        let mag: Vec<u8> = q.iter().map(|&v| v.unsigned_abs()).collect();
        let prod_scale = wp.scale() * in_scale;
        let bias_q: Vec<i32> = bias
            .data()
            .iter()
            .map(|&b| (b / prod_scale).round() as i32)
            .collect();
        QWeights {
            sign,
            mag,
            bias_q,
            requant: out_scale.map(|s| prod_scale / s),
            dequant: prod_scale,
            act_qmax: level.act_qmax() as f32,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum QLayer {
    Conv {
        w: QWeights,
        out_c: usize,
        in_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
    },
    Dense {
        w: QWeights,
        out_dim: usize,
        in_dim: usize,
    },
    AvgPool {
        k: usize,
    },
    Flatten,
}

/// A u8 activation map flowing between quantized layers.
#[derive(Debug, Clone)]
struct QAct {
    data: Vec<u8>,
    dims: Vec<usize>,
}

/// An 8-bit fixed-point mirror of a float [`Sequential`].
///
/// Built once from the float model plus a calibration set; evaluated with
/// any [`MulKernel`]. The same `QuantModel` therefore serves as the
/// quantized accurate DNN (exact kernel) and as every AxDNN (LUT kernels).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantModel {
    name: String,
    placement: Placement,
    level: QLevel,
    input_scale: f32,
    input_qmax: f32,
    qlayers: Vec<QLayer>,
}

impl QuantModel {
    /// Quantizes a float model.
    ///
    /// `calib` images (float `[C, H, W]` in `[0, 1]`) are run through the
    /// float model to pick per-layer activation scales (max-abs
    /// calibration). The supported topology is the paper's: every conv and
    /// every non-final dense layer is immediately followed by ReLU, pools
    /// are average pools, and the network ends in a dense layer producing
    /// logits.
    ///
    /// # Errors
    ///
    /// Returns [`AxError::Config`] for unsupported topologies and when
    /// `calib` is empty.
    pub fn from_float(
        model: &Sequential,
        calib: &[Tensor],
        placement: Placement,
    ) -> Result<Self, AxError> {
        Self::from_float_with_level(model, calib, placement, QLevel::INT8)
    }

    /// Like [`QuantModel::from_float`] with an explicit quantization
    /// level — the `Qlevel` input of the paper's Algorithm 1.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantModel::from_float`].
    pub fn from_float_with_level(
        model: &Sequential,
        calib: &[Tensor],
        placement: Placement,
        level: QLevel,
    ) -> Result<Self, AxError> {
        if calib.is_empty() {
            return Err(AxError::config("calibration set is empty"));
        }
        let layers = model.layers();
        // Calibrate: record, for every layer output index, the max-abs
        // activation over the calibration set.
        let mut out_max: Vec<MaxAbs> = vec![MaxAbs::new(); layers.len()];
        for img in calib {
            let (inputs, logits) = model.forward_trace(img);
            for (i, m) in out_max.iter_mut().enumerate() {
                if i + 1 < layers.len() {
                    m.update(&inputs[i + 1]);
                } else {
                    m.update(&logits);
                }
            }
        }

        let input_qmax = level.act_qmax() as f32;
        let input_scale = 1.0 / input_qmax;
        let mut qlayers = Vec::new();
        let mut in_scale = input_scale;
        let mut i = 0;
        while i < layers.len() {
            match &layers[i] {
                Layer::Conv2d(c) => {
                    // Conv must be followed by ReLU (the paper's nets are).
                    if !matches!(layers.get(i + 1), Some(Layer::Relu)) {
                        return Err(AxError::config(format!(
                            "conv at layer {i} is not followed by relu"
                        )));
                    }
                    let post_relu_max = out_max[i + 1].value();
                    let out_scale = level.act_params(post_relu_max).scale();
                    let dims = c.weight().dims();
                    qlayers.push(QLayer::Conv {
                        w: QWeights::build(c.weight(), c.bias(), in_scale, Some(out_scale), level),
                        out_c: dims[0],
                        in_c: dims[1],
                        k: dims[2],
                        stride: c.stride(),
                        pad: c.pad(),
                    });
                    in_scale = out_scale;
                    i += 2; // skip the fused relu
                }
                Layer::Dense(d) => {
                    let is_final = i + 1 == layers.len();
                    let fused_relu = matches!(layers.get(i + 1), Some(Layer::Relu));
                    if !is_final && !fused_relu {
                        return Err(AxError::config(format!(
                            "dense at layer {i} is neither final nor followed by relu"
                        )));
                    }
                    let dims = d.weight().dims();
                    if is_final {
                        qlayers.push(QLayer::Dense {
                            w: QWeights::build(d.weight(), d.bias(), in_scale, None, level),
                            out_dim: dims[0],
                            in_dim: dims[1],
                        });
                        i += 1;
                    } else {
                        let post_relu_max = out_max[i + 1].value();
                        let out_scale = level.act_params(post_relu_max).scale();
                        qlayers.push(QLayer::Dense {
                            w: QWeights::build(
                                d.weight(),
                                d.bias(),
                                in_scale,
                                Some(out_scale),
                                level,
                            ),
                            out_dim: dims[0],
                            in_dim: dims[1],
                        });
                        in_scale = out_scale;
                        i += 2;
                    }
                }
                Layer::AvgPool(p) => {
                    qlayers.push(QLayer::AvgPool { k: p.k() });
                    i += 1;
                }
                Layer::Flatten => {
                    qlayers.push(QLayer::Flatten);
                    i += 1;
                }
                Layer::Relu => {
                    return Err(AxError::config(format!(
                        "relu at layer {i} does not follow a conv/dense layer"
                    )));
                }
            }
        }
        match qlayers.last() {
            Some(QLayer::Dense { w, .. }) if w.requant.is_none() => {}
            _ => return Err(AxError::config("network must end in a dense logits layer")),
        }
        Ok(QuantModel {
            name: format!("{}-{level}", model.name()),
            placement,
            level,
            input_scale,
            input_qmax,
            qlayers,
        })
    }

    /// The quantization level.
    pub fn level(&self) -> QLevel {
        self.level
    }

    /// The model name (float name + `-q8`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The approximation placement policy.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Runs quantized inference with the given multiplier kernel and
    /// returns float logits.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the expected input layout.
    pub fn forward_with<K: MulKernel + ?Sized>(&self, x: &Tensor, kernel: &K) -> Tensor {
        let qmax = self.input_qmax;
        let mut act = QAct {
            data: x
                .data()
                .iter()
                .map(|&v| (v * qmax).round().clamp(0.0, qmax) as u8)
                .collect(),
            dims: x.dims().to_vec(),
        };
        let exact = ExactMul;
        for (li, ql) in self.qlayers.iter().enumerate() {
            match ql {
                QLayer::Conv {
                    w,
                    out_c,
                    in_c,
                    k,
                    stride,
                    pad,
                } => {
                    act = if self.placement.applies_to_conv() {
                        conv_forward(&act, w, *out_c, *in_c, *k, *stride, *pad, kernel)
                    } else {
                        conv_forward(&act, w, *out_c, *in_c, *k, *stride, *pad, &exact)
                    };
                }
                QLayer::Dense { w, out_dim, in_dim } => {
                    let use_approx = self.placement.applies_to_dense();
                    if w.requant.is_some() {
                        act = if use_approx {
                            dense_forward(&act, w, *out_dim, *in_dim, kernel)
                        } else {
                            dense_forward(&act, w, *out_dim, *in_dim, &exact)
                        };
                    } else {
                        // Final logits layer.
                        debug_assert_eq!(li, self.qlayers.len() - 1);
                        return if use_approx {
                            dense_logits(&act, w, *out_dim, *in_dim, kernel)
                        } else {
                            dense_logits(&act, w, *out_dim, *in_dim, &exact)
                        };
                    }
                }
                QLayer::AvgPool { k } => act = avgpool_forward(&act, *k),
                QLayer::Flatten => {
                    let n = act.data.len();
                    act.dims = vec![n];
                }
            }
        }
        unreachable!("final dense layer returns early");
    }

    /// Predicted class under the given kernel.
    pub fn predict_with<K: MulKernel + ?Sized>(&self, x: &Tensor, kernel: &K) -> usize {
        self.forward_with(x, kernel).argmax()
    }

    /// Accuracy over (up to `max_n` examples of) a dataset, in parallel.
    pub fn accuracy_with<K: MulKernel + ?Sized>(
        &self,
        data: &Dataset,
        kernel: &K,
        max_n: usize,
    ) -> f32 {
        let n = data.len().min(max_n);
        if n == 0 {
            return 0.0;
        }
        let correct = parallel::par_reduce(
            n,
            || 0usize,
            |acc, i| acc + usize::from(self.predict_with(data.image(i), kernel) == data.label(i)),
            |a, b| a + b,
        );
        correct as f32 / n as f32
    }
}

#[allow(clippy::too_many_arguments)]
fn conv_forward<K: MulKernel + ?Sized>(
    x: &QAct,
    w: &QWeights,
    out_c: usize,
    in_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    kernel: &K,
) -> QAct {
    let [ic, h, wd] = x.dims[..] else {
        panic!("conv input must be [C, H, W]");
    };
    assert_eq!(ic, in_c, "conv channel mismatch");
    let oh = (h + 2 * pad - k) / stride + 1;
    let ow = (wd + 2 * pad - k) / stride + 1;
    let m = w.requant.expect("conv layers always requantize");
    let mut out = vec![0u8; out_c * oh * ow];
    let (s, p) = (stride as isize, pad as isize);
    for o in 0..out_c {
        let w_base = o * in_c * k * k;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc: i32 = w.bias_q[o];
                for c in 0..in_c {
                    let x_base = c * h * wd;
                    let wc_base = w_base + c * k * k;
                    for ky in 0..k {
                        let iy = oy as isize * s + ky as isize - p;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let x_row = x_base + iy as usize * wd;
                        let w_row = wc_base + ky * k;
                        for kx in 0..k {
                            let ix = ox as isize * s + kx as isize - p;
                            if ix < 0 || ix >= wd as isize {
                                continue;
                            }
                            let wi = w_row + kx;
                            let a = x.data[x_row + ix as usize];
                            let prod = kernel.mul(w.mag[wi], a) as i32;
                            acc += w.sign[wi] as i32 * prod;
                        }
                    }
                }
                // Fused ReLU: clamp below at 0 during requantization.
                out[(o * oh + oy) * ow + ox] =
                    (acc as f32 * m).round().clamp(0.0, w.act_qmax) as u8;
            }
        }
    }
    QAct {
        data: out,
        dims: vec![out_c, oh, ow],
    }
}

fn dense_forward<K: MulKernel + ?Sized>(
    x: &QAct,
    w: &QWeights,
    out_dim: usize,
    in_dim: usize,
    kernel: &K,
) -> QAct {
    assert_eq!(x.data.len(), in_dim, "dense input size mismatch");
    let m = w.requant.expect("non-final dense requantizes");
    let mut out = vec![0u8; out_dim];
    for (o, ov) in out.iter_mut().enumerate() {
        let acc = dense_acc(x, w, o, in_dim, kernel);
        *ov = (acc as f32 * m).round().clamp(0.0, w.act_qmax) as u8;
    }
    QAct {
        data: out,
        dims: vec![out_dim],
    }
}

fn dense_logits<K: MulKernel + ?Sized>(
    x: &QAct,
    w: &QWeights,
    out_dim: usize,
    in_dim: usize,
    kernel: &K,
) -> Tensor {
    assert_eq!(x.data.len(), in_dim, "dense input size mismatch");
    let mut out = vec![0f32; out_dim];
    for (o, ov) in out.iter_mut().enumerate() {
        let acc = dense_acc(x, w, o, in_dim, kernel);
        *ov = acc as f32 * w.dequant;
    }
    Tensor::from_vec(out, &[out_dim])
}

#[inline]
fn dense_acc<K: MulKernel + ?Sized>(
    x: &QAct,
    w: &QWeights,
    o: usize,
    in_dim: usize,
    kernel: &K,
) -> i32 {
    let mut acc: i32 = w.bias_q[o];
    let row = o * in_dim;
    for (i, &a) in x.data.iter().enumerate() {
        let wi = row + i;
        let prod = kernel.mul(w.mag[wi], a) as i32;
        acc += w.sign[wi] as i32 * prod;
    }
    acc
}

fn avgpool_forward(x: &QAct, k: usize) -> QAct {
    let [c, h, w] = x.dims[..] else {
        panic!("pool input must be [C, H, W]");
    };
    assert!(h % k == 0 && w % k == 0, "pool window does not tile input");
    let (oh, ow) = (h / k, w / k);
    let div = (k * k) as u32;
    let mut out = vec![0u8; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc: u32 = 0;
                for dy in 0..k {
                    let row = (ch * h + oy * k + dy) * w + ox * k;
                    for dx in 0..k {
                        acc += x.data[row + dx] as u32;
                    }
                }
                // Round-to-nearest integer average; scale is unchanged.
                out[(ch * oh + oy) * ow + ox] = ((acc + div / 2) / div) as u8;
            }
        }
    }
    QAct {
        data: out,
        dims: vec![c, oh, ow],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axnn::layer::{Conv2d, Dense};
    use axnn::zoo;
    use axutil::rng::Rng;

    fn calib_images(n: usize, dims: &[usize], seed: u64) -> Vec<Tensor> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut t = Tensor::zeros(dims);
                rng.fill_range_f32(t.data_mut(), 0.0, 1.0);
                t
            })
            .collect()
    }

    #[test]
    fn final_dense_only_model_matches_float_logits() {
        // flatten -> dense(4 -> 3): quantized logits must approximate the
        // float logits to within a few LSBs of the involved scales.
        let mut rng = Rng::seed_from_u64(1);
        let model = Sequential::new(
            "lin",
            vec![Layer::Flatten, Layer::Dense(Dense::new(4, 3, &mut rng))],
        );
        let calib = calib_images(8, &[1, 2, 2], 2);
        let qm = QuantModel::from_float(&model, &calib, Placement::ConvOnly).unwrap();
        for img in calib_images(5, &[1, 2, 2], 3) {
            let fl = model.forward(&img);
            let ql = qm.forward_with(&img, &ExactMul);
            for (a, b) in fl.data().iter().zip(ql.data()) {
                assert!((a - b).abs() < 0.05, "float {a} vs quant {b}");
            }
        }
    }

    #[test]
    fn lenet_quantization_preserves_predictions_mostly() {
        let model = zoo::lenet5(&mut Rng::seed_from_u64(4));
        let calib = calib_images(6, &[1, 28, 28], 5);
        let qm = QuantModel::from_float(&model, &calib, Placement::ConvOnly).unwrap();
        let mut agree = 0;
        let probes = calib_images(10, &[1, 28, 28], 6);
        for img in &probes {
            if model.predict(img) == qm.predict_with(img, &ExactMul) {
                agree += 1;
            }
        }
        // Untrained logits are small; quantization noise may flip a few.
        assert!(agree >= 6, "only {agree}/10 predictions agree");
    }

    #[test]
    fn exact_lut_is_bit_identical_to_builtin_mul() {
        let model = zoo::lenet5(&mut Rng::seed_from_u64(7));
        let calib = calib_images(4, &[1, 28, 28], 8);
        let qm = QuantModel::from_float(&model, &calib, Placement::ConvOnly).unwrap();
        let lut = axmul::MulLut::exact();
        for img in calib_images(4, &[1, 28, 28], 9) {
            assert_eq!(
                qm.forward_with(&img, &ExactMul),
                qm.forward_with(&img, &lut)
            );
        }
    }

    #[test]
    fn approximate_kernel_changes_logits() {
        let model = zoo::lenet5(&mut Rng::seed_from_u64(10));
        let calib = calib_images(4, &[1, 28, 28], 11);
        let qm = QuantModel::from_float(&model, &calib, Placement::ConvOnly).unwrap();
        let approx = axmul::Registry::standard().build_lut("L40").unwrap();
        let img = &calib[0];
        assert_ne!(
            qm.forward_with(img, &ExactMul),
            qm.forward_with(img, &approx)
        );
    }

    #[test]
    fn conv_only_placement_ignores_kernel_in_dense_net() {
        // The FFNN has no conv layer, so with ConvOnly placement an
        // approximate kernel must change nothing.
        let model = zoo::ffnn(&mut Rng::seed_from_u64(12));
        let calib = calib_images(4, &[1, 28, 28], 13);
        let qm = QuantModel::from_float(&model, &calib, Placement::ConvOnly).unwrap();
        let approx = axmul::Registry::standard().build_lut("L40").unwrap();
        let img = &calib[0];
        assert_eq!(
            qm.forward_with(img, &ExactMul),
            qm.forward_with(img, &approx)
        );
        // With Placement::All it must matter.
        let qm_all = QuantModel::from_float(&model, &calib, Placement::All).unwrap();
        assert_ne!(
            qm_all.forward_with(img, &ExactMul),
            qm_all.forward_with(img, &approx)
        );
    }

    #[test]
    fn unsupported_topologies_are_rejected() {
        let mut rng = Rng::seed_from_u64(14);
        // Conv not followed by relu.
        let bad1 = Sequential::new(
            "bad1",
            vec![
                Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, &mut rng)),
                Layer::Flatten,
                Layer::Dense(Dense::new(2 * 4 * 4, 2, &mut rng)),
            ],
        );
        let calib = calib_images(2, &[1, 4, 4], 15);
        assert!(QuantModel::from_float(&bad1, &calib, Placement::ConvOnly).is_err());
        // Network not ending in dense.
        let bad2 = Sequential::new("bad2", vec![Layer::Flatten]);
        assert!(QuantModel::from_float(&bad2, &calib, Placement::ConvOnly).is_err());
        // Empty calibration set.
        let ok_model = Sequential::new(
            "ok",
            vec![Layer::Flatten, Layer::Dense(Dense::new(16, 2, &mut rng))],
        );
        assert!(QuantModel::from_float(&ok_model, &[], Placement::ConvOnly).is_err());
    }

    #[test]
    fn lower_qlevel_degrades_gracefully() {
        use crate::qlevel::QLevel;
        let model = zoo::lenet5(&mut Rng::seed_from_u64(20));
        let calib = calib_images(4, &[1, 28, 28], 21);
        let q8 =
            QuantModel::from_float_with_level(&model, &calib, Placement::ConvOnly, QLevel::INT8)
                .unwrap();
        let q4 = QuantModel::from_float_with_level(
            &model,
            &calib,
            Placement::ConvOnly,
            QLevel::new(4, 4),
        )
        .unwrap();
        assert_eq!(q8.level(), QLevel::INT8);
        assert_eq!(q4.level().to_string(), "w4a4");
        let img = &calib[0];
        let l8 = q8.forward_with(img, &ExactMul);
        let l4 = q4.forward_with(img, &ExactMul);
        assert!(l4.data().iter().all(|v| v.is_finite()));
        // 4-bit logits differ from 8-bit logits (coarser codes).
        assert_ne!(l8, l4);
        // And the float reference is closer to 8-bit than to 4-bit.
        let fl = model.forward(img);
        let d8 = fl.l2_dist(&l8);
        let d4 = fl.l2_dist(&l4);
        assert!(
            d8 <= d4,
            "w8a8 should track float at least as well: {d8} vs {d4}"
        );
    }

    #[test]
    fn avgpool_math_is_rounded_mean() {
        let x = QAct {
            data: vec![10, 20, 30, 41],
            dims: vec![1, 2, 2],
        };
        let y = avgpool_forward(&x, 2);
        // (10+20+30+41+2)/4 = 25.75 -> 25 (integer round-half-up of 25.25? 101/4 = 25.25 -> 25)
        assert_eq!(y.data, vec![25]);
        assert_eq!(y.dims, vec![1, 1, 1]);
    }

    #[test]
    fn lenet_topology_quantizes_with_pools() {
        let model = zoo::alexnet_mini(&mut Rng::seed_from_u64(16));
        let calib = calib_images(2, &[3, 32, 32], 17);
        let qm = QuantModel::from_float(&model, &calib, Placement::ConvOnly).unwrap();
        let logits = qm.forward_with(&calib[0], &ExactMul);
        assert_eq!(logits.len(), 10);
        assert!(logits.data().iter().all(|v| v.is_finite()));
    }
}
