//! Gate-level combinational circuits for approximate arithmetic.
//!
//! This crate is the hardware substrate of the reproduction. The paper
//! evaluates DNN accelerators built from *approximate multipliers*
//! (EvoApprox8b). Those multipliers are gate-level artifacts, so we model
//! them as gate-level artifacts:
//!
//! * [`netlist`] — a compact combinational netlist IR with a 64-way
//!   bit-parallel simulator (one `u64` word simulates 64 input vectors at
//!   once), which makes exhaustive 2^16-point characterization of an 8x8
//!   multiplier essentially free.
//! * [`cells`] — exact and approximate adder cells. The approximate cells
//!   are behavioral models in the spirit of the approximate mirror-adder
//!   literature; each documents its full truth table and error pattern.
//! * [`adders`] — ripple-carry adders with per-bit cell selection and
//!   lower-part-OR (LOA) construction.
//! * [`multiplier`] — a parameterized unsigned array multiplier generator
//!   with the approximation knobs used to emulate the EvoApprox8b parts:
//!   column truncation (with optional compensation), LOA columns,
//!   approximate full-adder columns and partial-product row perforation.
//! * [`analysis`] — exhaustive error metrics (MAE, WCE, bias, error rate)
//!   plus unit-gate area / critical-path delay / switching-power proxies,
//!   i.e. the EvoApprox-style datasheet quantities.
//!
//! # Examples
//!
//! Build an exact 8x8 multiplier and check one product:
//!
//! ```
//! use axcirc::multiplier::{ApproxSpec, ArrayMultiplier};
//!
//! let exact = ArrayMultiplier::new(8, ApproxSpec::exact()).build();
//! let lut = exact.exhaustive_u16();
//! assert_eq!(lut[(200 << 8) | 17] as u32, 200 * 17);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod adders;
pub mod analysis;
pub mod cells;
pub mod export;
pub mod multiplier;
pub mod netlist;
pub mod signed_mul;

pub use analysis::{AreaReport, ErrorMetrics};
pub use cells::ApproxCell;
pub use multiplier::{ApproxSpec, ArrayMultiplier};
pub use netlist::{Netlist, NodeId};
pub use signed_mul::BaughWooleyMultiplier;
