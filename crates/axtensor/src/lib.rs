//! A minimal dense `f32` tensor library.
//!
//! This is the numeric substrate of the float (training / attack) path:
//! row-major tensors with explicit shapes, element-wise operations,
//! matrix-vector products and the norms the adversarial-attack budgets
//! are defined in (`l0`, `l2`, `linf`).
//!
//! The design is deliberately small: the networks in this reproduction are
//! LeNet-scale, so clarity and determinism beat generality. Convolution
//! loops live next to the layers in `axnn`, not here.
//!
//! # Examples
//!
//! ```
//! use axtensor::Tensor;
//!
//! let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
//! assert_eq!(x.l2_norm(), (14.0f32).sqrt());
//! assert_eq!(x.argmax(), 2);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod norms;
pub mod shape;
pub mod stats;
pub mod tensor;

pub use norms::Norm;
pub use shape::Shape;
pub use tensor::Tensor;
