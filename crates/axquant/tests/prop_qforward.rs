//! Property tests pinning the batched plan engine to the per-image path.
//!
//! The batch API must be a pure performance optimization: for any model,
//! placement and quantization level, `forward_batch_with` over N images
//! and M kernels must be *bit-exact* with N×M independent
//! `forward_with` calls, and the exact LUT must be bit-exact with the
//! builtin exact multiplier through the GEMM path.

use std::sync::Mutex;

use axmul::{ExactMul, FaultedMul, MulLut};
use axnn::layer::{AvgPool2d, Conv2d, Dense, Layer};
use axnn::model::Sequential;
use axquant::{Placement, QLevel, QuantModel};
use axtensor::Tensor;
use axutil::rng::Rng;
use proptest::prelude::*;

/// Serializes tests that read or write `AXDNN_THREADS`.
static ENV_LOCK: Mutex<()> = Mutex::new(());

const IN_DIMS: [usize; 3] = [1, 6, 6];

/// A small random model of one of three shapes that together cover every
/// engine path: dense-only, conv without padding, conv+pad+avgpool.
fn small_model(arch: usize, seed: u64) -> Sequential {
    let rng = &mut Rng::seed_from_u64(seed);
    match arch % 3 {
        0 => Sequential::new(
            "p-ffnn",
            vec![
                Layer::Flatten,
                Layer::Dense(Dense::new(36, 8, rng)),
                Layer::Relu,
                Layer::Dense(Dense::new(8, 4, rng)),
            ],
        ),
        1 => Sequential::new(
            "p-conv",
            vec![
                Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 0, rng)),
                Layer::Relu,
                Layer::Flatten,
                Layer::Dense(Dense::new(2 * 4 * 4, 4, rng)),
            ],
        ),
        _ => Sequential::new(
            "p-convpool",
            vec![
                Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, rng)),
                Layer::Relu,
                Layer::AvgPool(AvgPool2d::new(2)),
                Layer::Flatten,
                Layer::Dense(Dense::new(2 * 3 * 3, 4, rng)),
            ],
        ),
    }
}

fn images(n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut t = Tensor::zeros(&IN_DIMS);
            rng.fill_range_f32(t.data_mut(), 0.0, 1.0);
            t
        })
        .collect()
}

/// An approximate kernel with structure the engine must not assume away:
/// asymmetric and biased, including `mul(w, 0) != 0`.
fn biased_lut() -> MulLut {
    MulLut::from_fn("biased", |a, b| {
        ((a as u16).wrapping_mul(b as u16) & !0x7).wrapping_add((a as u16) & 3)
    })
}

/// Checks batch-vs-scalar bit-exactness and exact-LUT == builtin for one
/// quantized model. Returns an error message on the first mismatch.
fn check_engine(qm: &QuantModel, probes: &[Tensor]) -> Result<(), String> {
    let exact_lut = MulLut::exact();
    let approx = biased_lut();
    let kernels = [&exact_lut, &approx];
    let plan = qm.plan(&IN_DIMS);
    let batch = plan.forward_batch_with(probes, &kernels);
    for (img, row) in probes.iter().zip(&batch) {
        let scalar_exact = qm.forward_with(img, &exact_lut);
        let scalar_approx = qm.forward_with(img, &approx);
        if row[0] != scalar_exact {
            return Err(format!(
                "batch exact-LUT lane != per-image forward_with for {}",
                qm.name()
            ));
        }
        if row[1] != scalar_approx {
            return Err(format!(
                "batch approx lane != per-image forward_with for {}",
                qm.name()
            ));
        }
        // The exact LUT must be indistinguishable from the builtin
        // multiply through the whole GEMM path.
        if scalar_exact != qm.forward_with(img, &ExactMul) {
            return Err(format!("exact LUT != ExactMul for {}", qm.name()));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn batch_engine_is_bit_exact_on_random_models(
        seed in proptest::strategy::any::<u64>(),
        arch in 0usize..3,
        wbits in 2u8..=8,
        abits in 2u8..=8,
    ) {
        let model = small_model(arch, seed);
        let calib = images(4, seed ^ 0xCA11B);
        let probes = images(3, seed ^ 0x9A0BE5);
        let level = QLevel::new(wbits, abits);
        for placement in [Placement::ConvOnly, Placement::All] {
            let qm = QuantModel::from_float_with_level(&model, &calib, placement, level)
                .expect("supported topology");
            if let Err(msg) = check_engine(&qm, &probes) {
                prop_assert!(false, "{msg} (placement {placement}, level {level})");
            }
        }
    }
}

/// A stuck-at-faulted multiplier LUT must ride the same batch engine
/// contracts as any other table kernel: `forward_batch_with` under a
/// [`FaultedMul`] is bit-identical across `AXDNN_THREADS` 1/4 and
/// identical to the per-image `forward_with` path.
#[test]
fn faulted_kernel_batch_forward_is_thread_invariant() {
    use axcirc::faults::{Fault, FaultSet, StuckAt};

    let nl = axmul::Registry::standard()
        .find("17KS")
        .expect("registered")
        .build_netlist();
    // Tie a mid-significance product bit high: defective enough to
    // change products, not so defective that every logit saturates.
    let fault = Fault::new(nl.outputs()[3], StuckAt::One);
    let fk = FaultedMul::from_netlist("17KS", &nl, FaultSet::single(fault));
    let clean = MulLut::from_netlist("17KS", &nl);
    assert_ne!(fk.table(), clean.table(), "the fault must alter the LUT");
    assert!(matches!(
        axmul::MulBackend::of(&fk),
        axmul::MulBackend::Table(_)
    ));

    let model = small_model(2, 41);
    let calib = images(4, 42);
    let probes = images(3, 43);
    let qm = QuantModel::from_float(&model, &calib, Placement::All).expect("supported topology");

    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::env::var("AXDNN_THREADS").ok();
    let mut per_threads = Vec::new();
    for threads in ["1", "4"] {
        std::env::set_var("AXDNN_THREADS", threads);
        let plan = qm.plan(&IN_DIMS);
        per_threads.push(plan.forward_batch_with(&probes, &[&fk]));
    }
    match prev {
        Some(v) => std::env::set_var("AXDNN_THREADS", v),
        None => std::env::remove_var("AXDNN_THREADS"),
    }
    assert_eq!(
        per_threads[0], per_threads[1],
        "faulted batch forward must not depend on thread chunking"
    );
    for (img, row) in probes.iter().zip(&per_threads[0]) {
        assert_eq!(
            row[0],
            qm.forward_with(img, &fk),
            "faulted batch lane != per-image forward_with"
        );
    }
}

/// The full `Placement` × `QLevel` lattice, deterministically: all 49
/// weight/activation bit-width pairs under both placements on the model
/// shape that exercises conv, padding, pooling and dense layers.
#[test]
fn batch_engine_is_bit_exact_on_every_placement_and_qlevel() {
    let model = small_model(2, 77);
    let calib = images(4, 78);
    let probes = images(2, 79);
    for wbits in 2..=8u8 {
        for abits in 2..=8u8 {
            let level = QLevel::new(wbits, abits);
            for placement in [Placement::ConvOnly, Placement::All] {
                let qm = QuantModel::from_float_with_level(&model, &calib, placement, level)
                    .expect("supported topology");
                if let Err(msg) = check_engine(&qm, &probes) {
                    panic!("{msg} (placement {placement}, level {level})");
                }
            }
        }
    }
}
