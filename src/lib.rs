//! # axdnn — adversarial robustness of approximate DNN accelerators
//!
//! A from-scratch Rust reproduction of *"Is Approximation Universally
//! Defensive Against Adversarial Attacks in Deep Neural Networks?"*
//! (Siddique & Hoque, DATE 2022, arXiv:2112.01555).
//!
//! This umbrella crate re-exports the workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`circ`] | gate-level netlists, approximate adder/multiplier generators, error & area analysis |
//! | [`mul`] | named approximate multipliers (the EvoApprox8b substitution) as inference LUTs |
//! | [`tensor`] | minimal f32 tensors |
//! | [`data`] | synthetic MNIST / CIFAR-10 substitutes |
//! | [`nn`] | float training & inference (LeNet-5, AlexNet-mini, FFNN) with input gradients |
//! | [`quant`] | int8 fixed-point inference with pluggable multiplier kernels |
//! | [`attack`] | the ten Foolbox-style attacks (FGM/BIM/PGD/CR/RAG/RAU) |
//! | [`robust`] | the paper's methodology: Algorithm 1, robustness grids, transferability, quantization study |
//! | [`serve`] | fault-tolerant batched inference serving: deadlines, backpressure, panic isolation, degradation |
//! | [`util`] | deterministic PRNG, parallel helpers, binary codec |
//!
//! # Quickstart
//!
//! ```
//! use axdnn::mul::{kernel::MulKernel, Registry};
//!
//! // Build the paper's L40 approximate multiplier and inspect one product.
//! let reg = Registry::standard();
//! let l40 = reg.build_lut("L40").expect("registered part");
//! assert_ne!(l40.mul(200, 200), 200 * 200); // it approximates
//! ```
//!
//! See `examples/` for end-to-end scenarios (train → quantize → attack →
//! robustness grid) and the `bench` crate for the figure regeneration
//! binaries.

#![deny(rustdoc::broken_intra_doc_links)]

/// Adversarial attacks (re-export of `axattack`).
pub use axattack as attack;
/// Gate-level circuits (re-export of `axcirc`).
pub use axcirc as circ;
/// Synthetic datasets (re-export of `axdata`).
pub use axdata as data;
/// Named approximate multipliers (re-export of `axmul`).
pub use axmul as mul;
/// Neural networks (re-export of `axnn`).
pub use axnn as nn;
/// Fixed-point quantization (re-export of `axquant`).
pub use axquant as quant;
/// The paper's methodology (re-export of `axrobust`).
pub use axrobust as robust;
/// Batched inference serving (re-export of `axserve`).
pub use axserve as serve;
/// Tensors (re-export of `axtensor`).
pub use axtensor as tensor;
/// Utilities (re-export of `axutil`).
pub use axutil as util;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired() {
        // Every one of the ten re-exported crates answers through its
        // umbrella path (see also tests/workspace.rs for the manifest side).
        let reg = crate::mul::Registry::standard();
        assert!(reg.find("1JFF").is_some());
        assert_eq!(crate::attack::suite::AttackId::ALL.len(), 10);
        assert_eq!(crate::robust::eval::paper_eps_grid().len(), 10);

        let x = crate::tensor::Tensor::from_vec(vec![3.0, -4.0], &[2]);
        assert_eq!(x.l2_norm(), 5.0);

        let mut rng = crate::util::rng::Rng::seed_from_u64(9);
        let data = crate::data::mnist::SynthMnist::generate(&crate::data::mnist::MnistConfig {
            n: 2,
            seed: 3,
            ..Default::default()
        });
        assert_eq!(data.len(), 2);

        let model = crate::nn::zoo::ffnn(&mut rng);
        assert!(model.num_params() > 0);

        assert_eq!(crate::circ::Netlist::new(4).num_inputs(), 4);
        let _ = crate::quant::Placement::ConvOnly;

        let cfg = crate::serve::ServerConfig::default();
        assert!(cfg.workers > 0 && cfg.max_batch > 0);
    }
}
