//! Scalar vs batched quantized inference on a LeNet-sized model.
//!
//! The figure sweeps evaluate ~M multiplier victims on the same crafted
//! image set. `scalar` runs M x N independent `forward_with` passes (one
//! plan compile + scratch allocation each, nothing shared); `batched
//! serial` runs the same work through one compiled plan and one reused
//! scratch, sharing input quantization and first-layer im2col across the
//! kernels; `batched parallel` additionally splits images across threads
//! in chunks. Both exact and LUT kernel columns are exercised.

use axmul::{MulLut, Registry};
use axnn::zoo;
use axquant::{Placement, QuantModel};
use axtensor::Tensor;
use axutil::rng::Rng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const N_IMAGES: usize = 4;

fn setup() -> (QuantModel, Vec<Tensor>, Vec<MulLut>) {
    let model = zoo::lenet5(&mut Rng::seed_from_u64(1));
    let mut rng = Rng::seed_from_u64(2);
    let images: Vec<Tensor> = (0..N_IMAGES)
        .map(|_| {
            let mut t = Tensor::zeros(&[1, 28, 28]);
            rng.fill_range_f32(t.data_mut(), 0.0, 1.0);
            t
        })
        .collect();
    let q = QuantModel::from_float(&model, &images[..1], Placement::ConvOnly).unwrap();
    let reg = Registry::standard();
    // One exact column (as a LUT, like the figures' M1) + three approx.
    let mut kernels = vec![MulLut::exact()];
    for name in ["17KS", "JQQ", "L40"] {
        kernels.push(reg.build_lut(name).unwrap());
    }
    (q, images, kernels)
}

fn bench_qforward(c: &mut Criterion) {
    let (q, images, kernels) = setup();
    let krefs: Vec<&MulLut> = kernels.iter().collect();
    let m = krefs.len();
    let mut group = c.benchmark_group(format!("lenet5_qforward_{m}kx{N_IMAGES}img"));
    group.bench_function("scalar_passes", |b| {
        b.iter(|| {
            let mut sum = 0usize;
            for lut in &krefs {
                for img in &images {
                    sum += q.predict_with(black_box(img), *lut);
                }
            }
            sum
        })
    });
    let plan = q.plan(&[1, 28, 28]);
    group.bench_function("batched_serial", |b| {
        let mut scratch = plan.scratch_for(m);
        b.iter(|| {
            images
                .iter()
                .map(|img| {
                    plan.forward_multi(&mut scratch, black_box(img), &krefs)
                        .iter()
                        .map(Tensor::argmax)
                        .sum::<usize>()
                })
                .sum::<usize>()
        })
    });
    group.bench_function("batched_parallel", |b| {
        b.iter(|| plan.predict_batch_with(black_box(&images), &krefs))
    });
    group.finish();
}

criterion_group!(benches, bench_qforward);
criterion_main!(benches);
