//! Small statistics helpers used by calibration and reporting.

use crate::tensor::Tensor;

/// Running maximum-absolute-value tracker, used to calibrate activation
/// quantization scales over a calibration set.
///
/// # Examples
///
/// ```
/// use axtensor::{stats::MaxAbs, Tensor};
///
/// let mut m = MaxAbs::new();
/// m.update(&Tensor::from_vec(vec![0.5, -2.0], &[2]));
/// m.update(&Tensor::from_vec(vec![1.0, 1.5], &[2]));
/// assert_eq!(m.value(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MaxAbs {
    max: f32,
}

impl MaxAbs {
    /// Creates a tracker at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a tensor's values into the running maximum.
    pub fn update(&mut self, t: &Tensor) {
        self.max = self.max.max(t.max_abs());
    }

    /// Folds a scalar into the running maximum.
    pub fn update_scalar(&mut self, v: f32) {
        self.max = self.max.max(v.abs());
    }

    /// The observed maximum absolute value.
    pub fn value(&self) -> f32 {
        self.max
    }
}

/// Mean and (population) standard deviation of a slice.
pub fn mean_std(xs: &[f32]) -> (f32, f32) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / n;
    let var = xs
        .iter()
        .map(|&x| {
            let d = x as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    (mean as f32, var.sqrt() as f32)
}

/// A fixed-width histogram over `[lo, hi]`, used for activation
/// distribution reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` buckets over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f32, hi: f32, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "empty histogram range");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one observation (values outside the range clamp to the edge
    /// bins).
    pub fn add(&mut self, v: f32) {
        let bins = self.counts.len();
        let t = ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let idx = ((t * bins as f32) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The value below which `q` of the observations fall (approximate,
    /// bucket-resolution).
    pub fn quantile(&self, q: f32) -> f32 {
        let target = (q.clamp(0.0, 1.0) as f64 * self.total as f64) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                let frac = (i + 1) as f32 / self.counts.len() as f32;
                return self.lo + frac * (self.hi - self.lo);
            }
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxabs_tracks_envelope() {
        let mut m = MaxAbs::new();
        assert_eq!(m.value(), 0.0);
        m.update_scalar(-3.0);
        m.update_scalar(2.0);
        assert_eq!(m.value(), 3.0);
    }

    #[test]
    fn mean_std_of_constant_is_zero_std() {
        let (m, s) = mean_std(&[2.0; 10]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn mean_std_known_values() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn mean_std_empty() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..100 {
            h.add(i as f32 / 100.0);
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.counts().iter().sum::<u64>(), 100);
        let med = h.quantile(0.5);
        assert!((0.4..=0.6).contains(&med), "median {med}");
    }

    #[test]
    fn histogram_clamps_outliers() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-5.0);
        h.add(9.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }
}
