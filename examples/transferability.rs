//! A miniature Table II: do adversarial examples crafted on one accurate
//! model transfer to approximate victims of a *different* architecture?
//!
//! Trains an FFNN and a LeNet-5 on the same synthetic MNIST data, then
//! attacks each with BIM-linf examples crafted on (a) its own float twin
//! and (b) the other architecture.
//!
//! Run: `cargo run --release --example transferability`

use axdnn::attack::suite::AttackId;
use axdnn::data::mnist::{MnistConfig, SynthMnist};
use axdnn::mul::Registry;
use axdnn::nn::train::{fit, TrainConfig};
use axdnn::nn::zoo;
use axdnn::quant::Placement;
use axdnn::robust::experiments::quantize_victim;
use axdnn::robust::transfer::{transferability, TransferSource, TransferVictim};
use axdnn::util::rng::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = SynthMnist::generate(&MnistConfig {
        n: 1200,
        seed: 31,
        ..Default::default()
    });
    let test = SynthMnist::generate(&MnistConfig {
        n: 150,
        seed: 32,
        ..Default::default()
    });
    let cfg = TrainConfig {
        epochs: 2,
        verbose: true,
        ..Default::default()
    };

    let mut ffnn = zoo::ffnn(&mut Rng::seed_from_u64(1));
    println!("training FFNN...");
    fit(&mut ffnn, &train, &cfg);
    let mut lenet = zoo::lenet5(&mut Rng::seed_from_u64(2));
    println!("training LeNet-5...");
    fit(&mut lenet, &train, &cfg);

    let reg = Registry::standard();
    let lut = reg.build_lut("17KS").expect("registered");
    let q_ffnn = quantize_victim(&ffnn, &train, Placement::All)?;
    let q_lenet = quantize_victim(&lenet, &train, Placement::ConvOnly)?;

    let sources = [
        TransferSource {
            name: "AccFFNN".into(),
            model: &ffnn,
        },
        TransferSource {
            name: "AccL5".into(),
            model: &lenet,
        },
    ];
    let victims = [
        TransferVictim {
            name: "AxFFNN(17KS)".into(),
            qmodel: &q_ffnn,
            mult: &lut,
            data: &test,
        },
        TransferVictim {
            name: "AxL5(17KS)".into(),
            qmodel: &q_lenet,
            mult: &lut,
            data: &test,
        },
    ];
    // The paper's Table II setting: BIM-linf. A slightly larger budget
    // than the paper's 0.05 keeps the small-sample signal clear.
    let table = transferability(&sources, &victims, AttackId::BimLinf, 0.1, 100, 13);
    println!("\n{}", table.to_markdown());
    println!("Diagonal cells = structure known; off-diagonal = nothing known (stronger claim).");
    Ok(())
}
