//! Property tests pinning batched crafting to the per-image path.
//!
//! `Attack::craft_batch` must be a pure performance optimization: for
//! any model, attack, norm and chunking, crafting image `i` in a batch
//! must be *bit-exact* with the scalar
//! `craft(model, &images[i], labels[i], eps, &mut rng.derive(i as u64))`
//! call. PGD's random start makes this the sharpest case: its stream is
//! derived per image, so the result may not depend on which thread chunk
//! an image lands in.
//!
//! Chunking is controlled through the `AXDNN_THREADS` environment
//! variable, so every test that crafts batches serializes on [`ENV_LOCK`]
//! to keep the sweep race-free within this test binary.

use std::sync::Mutex;

use axattack::gradient::{Bim, Fgm, Pgd};
use axattack::norms::Norm;
use axattack::Attack;
use axnn::layer::{AvgPool2d, Conv2d, Dense, Layer};
use axnn::model::Sequential;
use axtensor::Tensor;
use axutil::rng::Rng;
use proptest::prelude::*;

/// Serializes tests that read or write `AXDNN_THREADS`.
static ENV_LOCK: Mutex<()> = Mutex::new(());

const IN_DIMS: [usize; 3] = [1, 8, 8];

/// A small random model: dense-only, plain conv, or conv+pool.
fn small_model(arch: usize, seed: u64) -> Sequential {
    let rng = &mut Rng::seed_from_u64(seed);
    match arch % 3 {
        0 => Sequential::new(
            "c-ffnn",
            vec![
                Layer::Flatten,
                Layer::Dense(Dense::new(64, 12, rng)),
                Layer::Relu,
                Layer::Dense(Dense::new(12, 4, rng)),
            ],
        ),
        1 => Sequential::new(
            "c-conv",
            vec![
                Layer::Conv2d(Conv2d::new(1, 3, 3, 1, 0, rng)),
                Layer::Relu,
                Layer::Flatten,
                Layer::Dense(Dense::new(3 * 6 * 6, 4, rng)),
            ],
        ),
        _ => Sequential::new(
            "c-convpool",
            vec![
                Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, rng)),
                Layer::Relu,
                Layer::AvgPool(AvgPool2d::new(2)),
                Layer::Flatten,
                Layer::Dense(Dense::new(2 * 4 * 4, 4, rng)),
            ],
        ),
    }
}

fn images(n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut t = Tensor::zeros(&IN_DIMS);
            rng.fill_range_f32(t.data_mut(), 0.1, 0.9);
            t
        })
        .collect()
}

/// The six gradient attack/norm combinations (BIM/PGD with few steps to
/// keep the property cheap).
fn gradient_attacks() -> Vec<Box<dyn Attack>> {
    vec![
        Box::new(Fgm::new(Norm::Linf)),
        Box::new(Fgm::new(Norm::L2)),
        Box::new(Bim::new(Norm::Linf).with_steps(3)),
        Box::new(Bim::new(Norm::L2).with_steps(3)),
        Box::new(Pgd::new(Norm::Linf).with_steps(3)),
        Box::new(Pgd::new(Norm::L2).with_steps(3)),
    ]
}

/// Compares one attack's batch output with the per-image scalar path.
fn check_attack(
    attack: &dyn Attack,
    model: &Sequential,
    imgs: &[Tensor],
    labels: &[usize],
    eps: f32,
    base: &Rng,
) -> Result<(), String> {
    let batch = attack.craft_batch(model, imgs, labels, eps, base);
    for (i, (img, &lbl)) in imgs.iter().zip(labels).enumerate() {
        let scalar = attack.craft(model, img, lbl, eps, &mut base.derive(i as u64));
        if batch[i] != scalar {
            return Err(format!(
                "{} eps {eps}: batch image {i} != scalar craft",
                attack.name()
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn craft_batch_is_bit_exact_with_scalar_crafting(
        seed in proptest::strategy::any::<u64>(),
        arch in 0usize..3,
        eps_step in 1u32..=8,
    ) {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let model = small_model(arch, seed);
        let imgs = images(5, seed ^ 0x1111);
        let labels: Vec<usize> = (0..imgs.len()).map(|i| i % 4).collect();
        let eps = eps_step as f32 * 0.05;
        let base = Rng::seed_from_u64(seed ^ 0xBA5E);
        for attack in gradient_attacks() {
            if let Err(msg) = check_attack(attack.as_ref(), &model, &imgs, &labels, eps, &base) {
                prop_assert!(false, "{msg} (arch {arch}, seed {seed})");
            }
        }
    }
}

/// Batched crafting must not depend on how the batch is chunked across
/// worker threads: sweep `AXDNN_THREADS` and require identical output,
/// including PGD whose randomness is derived per image.
#[test]
fn craft_batch_is_chunking_invariant() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::env::var("AXDNN_THREADS").ok();
    let model = small_model(2, 4242);
    let imgs = images(7, 77);
    let labels: Vec<usize> = (0..imgs.len()).map(|i| (i * 3) % 4).collect();
    let base = Rng::seed_from_u64(9);
    for attack in gradient_attacks() {
        let mut reference: Option<Vec<Tensor>> = None;
        for threads in ["1", "2", "3", "7"] {
            std::env::set_var("AXDNN_THREADS", threads);
            let batch = attack.craft_batch(&model, &imgs, &labels, 0.12, &base);
            match &reference {
                None => reference = Some(batch),
                Some(r) => assert_eq!(
                    r,
                    &batch,
                    "{} diverges between chunkings (threads {threads})",
                    attack.name()
                ),
            }
        }
        // The single-threaded run equals the scalar path, so by the
        // equality above every chunking does.
        std::env::set_var("AXDNN_THREADS", "1");
        check_attack(attack.as_ref(), &model, &imgs, &labels, 0.12, &base)
            .unwrap_or_else(|msg| panic!("{msg}"));
    }
    match prev {
        Some(v) => std::env::set_var("AXDNN_THREADS", v),
        None => std::env::remove_var("AXDNN_THREADS"),
    }
}

/// The default (per-image) `craft_batch` of decision attacks must follow
/// the same per-image stream contract as the gradient overrides.
#[test]
fn default_craft_batch_uses_per_image_streams() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    use axattack::suite::AttackId;
    let model = small_model(0, 31);
    let imgs = images(4, 32);
    let labels = vec![0usize, 1, 2, 3];
    let base = Rng::seed_from_u64(33);
    for id in [AttackId::CrL2, AttackId::RagL2, AttackId::RauLinf] {
        let attack = id.build();
        check_attack(attack.as_ref(), &model, &imgs, &labels, 0.2, &base)
            .unwrap_or_else(|msg| panic!("{msg}"));
    }
}
