//! # axdnn — adversarial robustness of approximate DNN accelerators
//!
//! A from-scratch Rust reproduction of *"Is Approximation Universally
//! Defensive Against Adversarial Attacks in Deep Neural Networks?"*
//! (Siddique & Hoque, DATE 2022, arXiv:2112.01555).
//!
//! This umbrella crate re-exports the workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`circ`] | gate-level netlists, approximate adder/multiplier generators, error & area analysis |
//! | [`mul`] | named approximate multipliers (the EvoApprox8b substitution) as inference LUTs |
//! | [`tensor`] | minimal f32 tensors |
//! | [`data`] | synthetic MNIST / CIFAR-10 substitutes |
//! | [`nn`] | float training & inference (LeNet-5, AlexNet-mini, FFNN) with input gradients |
//! | [`quant`] | int8 fixed-point inference with pluggable multiplier kernels |
//! | [`attack`] | the ten Foolbox-style attacks (FGM/BIM/PGD/CR/RAG/RAU) |
//! | [`robust`] | the paper's methodology: Algorithm 1, robustness grids, transferability, quantization study |
//! | [`util`] | deterministic PRNG, parallel helpers, binary codec |
//!
//! # Quickstart
//!
//! ```
//! use axdnn::mul::{kernel::MulKernel, Registry};
//!
//! // Build the paper's L40 approximate multiplier and inspect one product.
//! let reg = Registry::standard();
//! let l40 = reg.build_lut("L40").expect("registered part");
//! assert_ne!(l40.mul(200, 200), 200 * 200); // it approximates
//! ```
//!
//! See `examples/` for end-to-end scenarios (train → quantize → attack →
//! robustness grid) and the `bench` crate for the figure regeneration
//! binaries.

/// Adversarial attacks (re-export of `axattack`).
pub use axattack as attack;
/// Gate-level circuits (re-export of `axcirc`).
pub use axcirc as circ;
/// Synthetic datasets (re-export of `axdata`).
pub use axdata as data;
/// Named approximate multipliers (re-export of `axmul`).
pub use axmul as mul;
/// Neural networks (re-export of `axnn`).
pub use axnn as nn;
/// Fixed-point quantization (re-export of `axquant`).
pub use axquant as quant;
/// The paper's methodology (re-export of `axrobust`).
pub use axrobust as robust;
/// Tensors (re-export of `axtensor`).
pub use axtensor as tensor;
/// Utilities (re-export of `axutil`).
pub use axutil as util;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired() {
        let reg = crate::mul::Registry::standard();
        assert!(reg.find("1JFF").is_some());
        assert_eq!(crate::attack::suite::AttackId::ALL.len(), 10);
        assert_eq!(crate::robust::eval::paper_eps_grid().len(), 10);
    }
}
