//! Where the approximate multiplier applies.

/// Approximation placement policy.
///
/// The paper replaces multipliers *in the convolutional layers* only
/// (§IV.A); [`Placement::All`] extends them to dense layers as an
/// ablation (see the `ablation` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Placement {
    /// Approximate multipliers in convolution layers; dense layers stay
    /// exact. This is the paper's configuration.
    #[default]
    ConvOnly,
    /// Approximate multipliers in convolution *and* dense layers.
    All,
}

impl Placement {
    /// Whether conv layers use the approximate kernel.
    pub fn applies_to_conv(self) -> bool {
        true
    }

    /// Whether dense layers use the approximate kernel.
    pub fn applies_to_dense(self) -> bool {
        matches!(self, Placement::All)
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Placement::ConvOnly => write!(f, "conv-only"),
            Placement::All => write!(f, "all-layers"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_only_is_default_and_paper_mode() {
        assert_eq!(Placement::default(), Placement::ConvOnly);
        assert!(Placement::ConvOnly.applies_to_conv());
        assert!(!Placement::ConvOnly.applies_to_dense());
    }

    #[test]
    fn all_extends_to_dense() {
        assert!(Placement::All.applies_to_dense());
        assert!(Placement::All.applies_to_conv());
    }

    #[test]
    fn display_names() {
        assert_eq!(Placement::ConvOnly.to_string(), "conv-only");
        assert_eq!(Placement::All.to_string(), "all-layers");
    }
}
