//! Shared harness for the figure/table regeneration binaries.
//!
//! Every binary reads its configuration from the environment:
//!
//! * `AXDNN_PROFILE` — `quick` (default; seconds-to-minutes, small test
//!   samples) or `full` (the configuration recorded in `EXPERIMENTS.md`).
//! * `AXDNN_ARTIFACTS` — artifact directory (default `artifacts/`);
//!   trained weights are cached here and results are written to
//!   `<artifacts>/results/`.
//! * `AXDNN_N_EVAL` — overrides the per-cell evaluation sample count.
//! * `AXDNN_THREADS` — worker threads (default: available parallelism).
//!
//! Regenerate everything with:
//!
//! ```text
//! cargo run --release -p bench --bin train_models
//! for f in fig1 fig4 fig5 fig6 fig7 fig8 table1 table2 multipliers_report; do
//!     cargo run --release -p bench --bin $f
//! done
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod check;

use std::path::PathBuf;

use axrobust::experiments::FigureOpts;
use axrobust::store::{ModelStore, StoreConfig};

/// The artifact directory from `AXDNN_ARTIFACTS` (default `artifacts`).
pub fn artifacts_dir() -> PathBuf {
    std::env::var("AXDNN_ARTIFACTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("artifacts"))
}

/// Whether the `full` profile is selected.
pub fn is_full_profile() -> bool {
    std::env::var("AXDNN_PROFILE")
        .map(|v| v.eq_ignore_ascii_case("full"))
        .unwrap_or(false)
}

/// Builds the model store for the selected profile.
pub fn store_from_env() -> ModelStore {
    let dir = artifacts_dir();
    let cfg = if is_full_profile() {
        StoreConfig::full(dir)
    } else {
        StoreConfig::quick(dir)
    };
    ModelStore::new(cfg)
}

/// Builds figure options for the selected profile, honouring
/// `AXDNN_N_EVAL`.
pub fn figure_opts_from_env() -> FigureOpts {
    let mut opts = if is_full_profile() {
        FigureOpts::with_n(200)
    } else {
        FigureOpts::with_n(60)
    };
    if let Ok(v) = std::env::var("AXDNN_N_EVAL") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                opts.n_eval = n;
            }
        }
    }
    opts
}

/// Prints `content` and also writes it to
/// `<artifacts>/results/<name>.txt`.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = artifacts_dir().join("results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.txt"));
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("[saved {}]", path.display());
        }
    }
}

/// Wall-clock helper for binary footers.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let out = f();
    eprintln!("[{label}: {:.1}s]", start.elapsed().as_secs_f32());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_quick_profile() {
        // Do not mutate the environment (tests run in one process); only
        // exercise the default paths.
        let opts = figure_opts_from_env();
        assert!(opts.n_eval > 0);
        assert_eq!(opts.eps_grid.len(), 10);
        assert!(!artifacts_dir().as_os_str().is_empty());
    }

    #[test]
    fn timed_passes_value_through() {
        assert_eq!(timed("t", || 42), 42);
    }
}
