//! The serving-engine load generator: drives the `axserve` server
//! through four scenarios and writes `BENCH_serve.json`, validated in CI
//! by `bench_check`'s `Serve` report spec.
//!
//! Each scenario injects its failure mode *deterministically* through
//! [`axserve::FaultHook`] and explicit deadlines, so the counters in the
//! report are properties of the engine, not of runner timing:
//!
//! * **steady** — concurrent clients, no faults: everything completes
//!   and the micro-batcher coalesces (mean batch size on stderr);
//! * **overload** — one worker clogged by stall hooks behind a tiny
//!   admission queue: the flood sheds with `Overloaded` while every
//!   admitted request still completes;
//! * **poison** — one panic-hook request inside coalesced batches: the
//!   batch is bisected until the offender fails alone as `Poisoned`,
//!   batch-mates complete;
//! * **deadline** — a mix of expired and unbounded budgets: expired
//!   requests are rejected typed, the rest complete.
//!
//! Per scenario the JSON records request-count conservation
//! (`completed + shed + deadline + poisoned == requests`), throughput,
//! and P50/P99 client-observed latency. Counters are exact; only the
//! timings jitter.
//!
//! Environment: `AXDNN_LOADGEN_REQUESTS` (default 64) sizes the steady
//! and overload floods, `AXDNN_LOADGEN_CLIENTS` (default 8) the
//! concurrent client count.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use axdata::mnist::{MnistConfig, SynthMnist};
use axmul::Registry;
use axquant::{Placement, QuantModel};
use axserve::{FaultHook, Request, ServeError, Server, ServerConfig};
use axtensor::Tensor;
use axutil::rng::Rng;
use axutil::time::Deadline;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Client-observed outcome counters plus latency samples (completed
/// requests only) for one scenario.
#[derive(Debug, Default)]
struct Outcome {
    completed: u64,
    shed: u64,
    deadline: u64,
    poisoned: u64,
    latencies_ms: Vec<f64>,
}

impl Outcome {
    fn absorb(&mut self, result: &Result<axserve::Response, ServeError>, elapsed_ms: f64) {
        match result {
            Ok(_) => {
                self.completed += 1;
                self.latencies_ms.push(elapsed_ms);
            }
            Err(ServeError::Overloaded { .. }) => self.shed += 1,
            Err(ServeError::DeadlineExceeded) => self.deadline += 1,
            Err(ServeError::Poisoned { .. }) => self.poisoned += 1,
            Err(other) => panic!("loadgen hit an unexpected error: {other}"),
        }
    }
}

/// One finished scenario row of the report.
struct Row {
    scenario: &'static str,
    requests: u64,
    outcome: Outcome,
    retries: u64,
    elapsed_s: f64,
}

impl Row {
    fn quantile_ms(&self, q: f64) -> f64 {
        let lat = &self.outcome.latencies_ms;
        if lat.is_empty() {
            return 0.0;
        }
        let mut sorted = lat.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
    }

    fn throughput_per_s(&self) -> f64 {
        self.outcome.completed as f64 / self.elapsed_s
    }
}

/// Runs `requests.len()` clients against `server` from `clients` OS
/// threads (round-robin assignment), timing each predict end to end.
fn drive(server: &Server, requests: Vec<Request>, clients: usize) -> (Outcome, f64) {
    let outcome = Mutex::new(Outcome::default());
    let started = Instant::now();
    std::thread::scope(|s| {
        let mut lanes: Vec<Vec<Request>> = (0..clients).map(|_| Vec::new()).collect();
        for (i, req) in requests.into_iter().enumerate() {
            lanes[i % clients].push(req);
        }
        for lane in lanes {
            let outcome = &outcome;
            s.spawn(move || {
                for req in lane {
                    let t0 = Instant::now();
                    let result = server.predict(req);
                    let ms = t0.elapsed().as_secs_f64() * 1e3;
                    outcome.lock().expect("outcome").absorb(&result, ms);
                }
            });
        }
    });
    let elapsed_s = started.elapsed().as_secs_f64();
    (outcome.into_inner().expect("outcome"), elapsed_s)
}

fn main() {
    let n_requests = env_usize("AXDNN_LOADGEN_REQUESTS", 64);
    let clients = env_usize("AXDNN_LOADGEN_CLIENTS", 8);

    // The served model: the quickstart FFNN quantized everywhere, with
    // the paper's L40 LUT hosted next to the exact kernel.
    let data = SynthMnist::generate(&MnistConfig {
        n: 64,
        seed: 71,
        ..Default::default()
    });
    let model = axnn::zoo::ffnn(&mut Rng::seed_from_u64(70));
    let calib: Vec<Tensor> = (0..16).map(|i| data.image(i).clone()).collect();
    let qm = || QuantModel::from_float(&model, &calib, Placement::All).expect("quantize ffnn");
    let lut = Registry::standard()
        .build_lut("L40")
        .expect("registry kernel");
    let image = |i: usize| data.image(i % data.len()).clone();
    let kernel = |i: usize| if i % 2 == 0 { "exact" } else { "L40" };

    let mut rows = Vec::new();

    // Scenario 1: steady state. Everything completes.
    {
        let server = Server::builder()
            .model("ffnn", qm())
            .kernel("L40", lut.clone())
            .serve(ServerConfig::default());
        let requests: Vec<Request> = (0..n_requests)
            .map(|i| Request::new("ffnn", kernel(i), image(i)))
            .collect();
        let n = requests.len() as u64;
        let (outcome, elapsed_s) = drive(&server, requests, clients);
        let stats = server.stats();
        eprintln!(
            "[steady: {} completed, mean batch {:.2}, {} batches]",
            outcome.completed,
            stats.mean_batch_size(),
            stats.batches
        );
        rows.push(Row {
            scenario: "steady",
            requests: n,
            outcome,
            retries: stats.retries,
            elapsed_s,
        });
    }

    // Scenario 2: overload. One worker, stall hooks, tiny queue.
    {
        let server = Server::builder()
            .model("ffnn", qm())
            .kernel("L40", lut.clone())
            .serve(ServerConfig {
                workers: 1,
                queue_capacity: 4,
                max_batch: 2,
                linger: Duration::ZERO,
                ..ServerConfig::default()
            });
        let requests: Vec<Request> = (0..n_requests)
            .map(|i| {
                let mut req = Request::new("ffnn", kernel(i), image(i));
                if i % 8 == 0 {
                    req = req.with_hook(FaultHook::Stall(Duration::from_millis(40)));
                }
                req
            })
            .collect();
        let n = requests.len() as u64;
        // Twice the clients so the flood outruns the single worker.
        let (outcome, elapsed_s) = drive(&server, requests, clients * 2);
        let stats = server.stats();
        eprintln!(
            "[overload: {} shed of {n}, queue drained to {}]",
            outcome.shed, stats.queue_depth
        );
        rows.push(Row {
            scenario: "overload",
            requests: n,
            outcome,
            retries: stats.retries,
            elapsed_s,
        });
    }

    // Scenario 3: poison. One panic hook inside coalesced batches.
    {
        let server = Server::builder()
            .model("ffnn", qm())
            .kernel("L40", lut.clone())
            .serve(ServerConfig {
                workers: 2,
                max_batch: 4,
                linger: Duration::from_millis(2),
                retry_backoff: Duration::ZERO,
                ..ServerConfig::default()
            });
        let requests: Vec<Request> = (0..16)
            .map(|i| {
                let mut req = Request::new("ffnn", kernel(i), image(i));
                if i == 7 {
                    req = req.with_hook(FaultHook::Panic);
                }
                req
            })
            .collect();
        let n = requests.len() as u64;
        let (outcome, elapsed_s) = drive(&server, requests, clients);
        let stats = server.stats();
        eprintln!(
            "[poison: {} poisoned, {} panics, {} retries, {} batch-mates completed]",
            outcome.poisoned, stats.panics, stats.retries, outcome.completed
        );
        rows.push(Row {
            scenario: "poison",
            requests: n,
            outcome,
            retries: stats.retries,
            elapsed_s,
        });
    }

    // Scenario 4: deadline. Every fourth budget is already spent.
    {
        let server = Server::builder()
            .model("ffnn", qm())
            .kernel("L40", lut.clone())
            .serve(ServerConfig::default());
        let requests: Vec<Request> = (0..16)
            .map(|i| {
                let mut req = Request::new("ffnn", kernel(i), image(i));
                if i % 4 == 0 {
                    req = req.with_deadline(Deadline::expired_now());
                }
                req
            })
            .collect();
        let n = requests.len() as u64;
        let (outcome, elapsed_s) = drive(&server, requests, clients);
        let stats = server.stats();
        eprintln!(
            "[deadline: {} rejected typed, {} completed]",
            outcome.deadline, outcome.completed
        );
        rows.push(Row {
            scenario: "deadline",
            requests: n,
            outcome,
            retries: stats.retries,
            elapsed_s,
        });
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"serve_loadgen\",\n");
    json.push_str("  \"model\": \"ffnn-1x28\",\n");
    json.push_str("  \"kernels\": [\"exact\", \"L40\"],\n");
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str("  \"results\": [\n");
    let mut text = String::from(
        "# Serving engine loadgen (FFNN, exact + L40)\n\n\
         | scenario | requests | completed | shed | deadline | poisoned | retries | req/s | p50 ms | p99 ms |\n\
         |---|---|---|---|---|---|---|---|---|---|\n",
    );
    for (i, row) in rows.iter().enumerate() {
        let o = &row.outcome;
        let (p50, p99) = (row.quantile_ms(0.5), row.quantile_ms(0.99));
        let tput = row.throughput_per_s();
        assert_eq!(
            o.completed + o.shed + o.deadline + o.poisoned,
            row.requests,
            "{}: a request vanished without a verdict",
            row.scenario
        );
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"requests\": {}, \"completed\": {}, \
             \"shed\": {}, \"deadline\": {}, \"poisoned\": {}, \"retries\": {}, \
             \"throughput_per_s\": {tput:.1}, \"p50_ms\": {p50:.3}, \"p99_ms\": {p99:.3}}}{}\n",
            row.scenario,
            row.requests,
            o.completed,
            o.shed,
            o.deadline,
            o.poisoned,
            row.retries,
            if i + 1 < rows.len() { "," } else { "" },
        ));
        text.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {tput:.0} | {p50:.2} | {p99:.2} |\n",
            row.scenario, row.requests, o.completed, o.shed, o.deadline, o.poisoned, row.retries,
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    eprintln!("[saved BENCH_serve.json]");
    bench::emit("loadgen", &text);
}
