//! Universal adversarial training (Shafahi et al.) on the float engine.
//!
//! Shafahi et al. ("Universal Adversarial Training") harden a model
//! against *universal* perturbations — one shared delta for the whole
//! dataset — by alternating two SGD problems over the same minibatch
//! stream: an **ascent** step that pushes the delta up the summed input
//! gradient of the perturbed batch, and a **descent** step that updates
//! the weights on the batch perturbed by the freshly updated delta.
//! [`universal_adversarial_fit`] implements that alternation as a
//! superset of [`fit`](crate::train::fit): the same single owned-weights
//! plan, the same batch schedule, the same
//! [`Sgd::step_plan_scaled`] in-place update (no per-step recompile), with
//! the delta-ascent pass spliced in front of every weight step. The delta
//! lives in the shared eps-ball geometry of [`axtensor::norms`]
//! ([`project_ball`] after every ascent step, [`apply_delta`] to build
//! perturbed pixels), so training and the `axattack` crafter see exactly
//! the same constraint set.
//!
//! # Determinism and thread invariance
//!
//! Both passes ride the batched plan engine with per-image results folded
//! in fixed left-to-right image order (the PR 4 contract): input
//! gradients via [`FPlan::input_gradient_batch_indexed`](crate::plan::FPlan::input_gradient_batch_indexed)
//! summed on the caller thread, parameter gradients via
//! [`FPlan::loss_and_param_grads_batch`](crate::plan::FPlan::loss_and_param_grads_batch).
//! History, weights and the returned delta are bit-identical for any
//! `AXDNN_THREADS` setting.
//!
//! # The zero ball
//!
//! `eps == 0` pins the delta at the zero tensor and skips the ascent pass
//! entirely, so the weight path executes the *same* floating-point
//! operations as [`fit`](crate::train::fit): losses, accuracies and final
//! weights are bitwise equal to a plain `fit` run with the same base
//! config (pinned by `axquant/tests/prop_universal_train.rs` for the
//! quantized twin of this loop).

use axdata::Dataset;
use axtensor::norms::{apply_delta, ascent_direction, project_ball, Norm};
use axtensor::Tensor;

use crate::model::Sequential;
use crate::optim::Sgd;
use crate::train::TrainConfig;

/// Hyper-parameters for [`universal_adversarial_fit`]: a plain
/// [`TrainConfig`] plus the universal-perturbation ball and step size.
#[derive(Debug, Clone, PartialEq)]
pub struct UniversalTrainConfig {
    /// The underlying SGD schedule (epochs, batches, lr, seed, ...).
    pub base: TrainConfig,
    /// Perturbation budget. `0.0` reduces the run exactly to
    /// [`fit`](crate::train::fit).
    pub eps: f32,
    /// Ball norm for the delta.
    pub norm: Norm,
    /// Ascent step length as a multiple of `eps`. The default `1.0` is
    /// Shafahi's FGSM-style full step (the per-epoch projection keeps the
    /// delta inside the ball regardless).
    pub delta_step: f32,
}

impl Default for UniversalTrainConfig {
    fn default() -> Self {
        UniversalTrainConfig {
            base: TrainConfig::default(),
            eps: 0.1,
            norm: Norm::Linf,
            delta_step: 1.0,
        }
    }
}

/// Per-epoch record of a universal adversarial training run.
#[derive(Debug, Clone, PartialEq)]
pub struct UniversalFitHistory {
    /// Mean (perturbed-batch) training loss per epoch.
    pub losses: Vec<f32>,
    /// Clean training accuracy per epoch (capped sample, as in `fit`).
    pub accuracies: Vec<f32>,
    /// Accuracy per epoch under the epoch's final delta, on the same
    /// capped sample. Equals `accuracies` bitwise when `eps == 0`.
    pub universal_accuracies: Vec<f32>,
}

/// Trains `model` with Shafahi's alternating delta/weight updates and
/// returns the history plus the final universal delta (apply it with
/// [`apply_delta`]).
///
/// Per minibatch: (1) if `eps > 0`, one batched input-gradient pass at
/// `clip(x + delta)` whose per-image gradients are summed in image order,
/// followed by an `eps * delta_step` step along
/// [`ascent_direction`] and a [`project_ball`] projection; (2) one weight
/// step on the batch perturbed by the *updated* delta, through the same
/// in-place [`Sgd::step_plan_scaled`] path as
/// [`fit`](crate::train::fit). The recorded loss comes from the weight
/// pass, i.e. it is the adversarially perturbed training loss.
///
/// # Panics
///
/// Panics on an empty dataset or a negative budget.
pub fn universal_adversarial_fit(
    model: &mut Sequential,
    data: &Dataset,
    cfg: &UniversalTrainConfig,
) -> (UniversalFitHistory, Tensor) {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    assert!(cfg.eps >= 0.0, "negative budget");
    let in_dims = data.image(0).dims().to_vec();
    let mut opt = Sgd::new(model, cfg.base.lr, cfg.base.momentum, cfg.base.weight_decay);
    let mut plan = model.plan_owned(&in_dims);
    let mut delta = Tensor::zeros(&in_dims);
    let alpha = cfg.eps * cfg.delta_step;
    let mut history = UniversalFitHistory {
        losses: Vec::with_capacity(cfg.base.epochs),
        accuracies: Vec::with_capacity(cfg.base.epochs),
        universal_accuracies: Vec::with_capacity(cfg.base.epochs),
    };
    for epoch in 0..cfg.base.epochs {
        let batches = data.batch_indices(
            cfg.base.batch_size,
            cfg.base.seed ^ (epoch as u64).wrapping_mul(0x9E37),
        );
        let mut loss_acc = 0.0f64;
        for batch in &batches {
            let n = batch.len();
            if cfg.eps > 0.0 {
                // Ascent: summed input gradient of the perturbed batch,
                // folded in fixed image order on the caller thread.
                let perturbed: Vec<Tensor> = batch
                    .iter()
                    .map(|&i| apply_delta(data.image(i), &delta))
                    .collect();
                let grads = plan.input_gradient_batch_indexed(
                    n,
                    |k| &perturbed[k],
                    |k| data.label(batch[k]),
                );
                let mut g = Tensor::zeros(&in_dims);
                for (_, gi) in &grads {
                    g.add_scaled(gi, 1.0);
                }
                delta.add_scaled(&ascent_direction(&g, cfg.norm), alpha);
                delta = project_ball(&delta, cfg.eps, cfg.norm);
            }
            // Descent: a plain `fit` weight step on the batch perturbed
            // by the updated delta. The zero ball trains on the clean
            // images directly — op-for-op identical to `fit`.
            let (loss_sum, grads) = if cfg.eps == 0.0 {
                plan.loss_and_param_grads_batch(
                    n,
                    |k| data.image(batch[k]),
                    |k| data.label(batch[k]),
                )
            } else {
                let perturbed: Vec<Tensor> = batch
                    .iter()
                    .map(|&i| apply_delta(data.image(i), &delta))
                    .collect();
                plan.loss_and_param_grads_batch(n, |k| &perturbed[k], |k| data.label(batch[k]))
            };
            opt.step_plan_scaled(&mut plan, &grads, 1.0 / n as f32);
            loss_acc += (loss_sum / n as f32) as f64;
        }
        let mean_loss = (loss_acc / batches.len() as f64) as f32;
        let n_eval = data.len().min(2000);
        let correct = plan.count_correct(n_eval, |i| data.image(i), |i| data.label(i));
        let acc = correct as f32 / n_eval as f32;
        let univ_acc = if cfg.eps == 0.0 {
            acc
        } else {
            let perturbed: Vec<Tensor> = (0..n_eval)
                .map(|i| apply_delta(data.image(i), &delta))
                .collect();
            let c = plan.count_correct(n_eval, |i| &perturbed[i], |i| data.label(i));
            c as f32 / n_eval as f32
        };
        history.losses.push(mean_loss);
        history.accuracies.push(acc);
        history.universal_accuracies.push(univ_acc);
        if cfg.base.verbose {
            eprintln!(
                "[{}] universal epoch {}/{}: loss {:.4}, clean acc {:.2}%, universal acc {:.2}%",
                model.name(),
                epoch + 1,
                cfg.base.epochs,
                mean_loss,
                100.0 * acc,
                100.0 * univ_acc
            );
        }
        opt.set_lr((opt.lr() * cfg.base.lr_decay).max(1e-5));
    }
    plan.store_weights_into(model);
    (history, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Layer};
    use crate::train::fit;
    use axutil::rng::Rng;

    /// A linearly separable 2-class dataset in 4 dimensions, shifted into
    /// the pixel box `[0, 1]`.
    fn boxed_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from_u64(seed);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let label = rng.index(2);
            let centre = if label == 0 { 0.25 } else { 0.75 };
            let mut t = Tensor::zeros(&[4]);
            for v in t.data_mut() {
                *v = (centre + rng.normal_f32() * 0.05).clamp(0.0, 1.0);
            }
            images.push(t);
            labels.push(label);
        }
        Dataset::new("boxed", images, labels, 2)
    }

    fn mlp(seed: u64) -> Sequential {
        let mut rng = Rng::seed_from_u64(seed);
        Sequential::new(
            "mlp",
            vec![
                Layer::Dense(Dense::new(4, 8, &mut rng)),
                Layer::Relu,
                Layer::Dense(Dense::new(8, 2, &mut rng)),
            ],
        )
    }

    #[test]
    fn zero_eps_reduces_exactly_to_fit() {
        let data = boxed_dataset(60, 1);
        let cfg = UniversalTrainConfig {
            base: TrainConfig {
                epochs: 2,
                batch_size: 8,
                ..Default::default()
            },
            eps: 0.0,
            ..Default::default()
        };
        let mut plain = mlp(2);
        let mut universal = mlp(2);
        let plain_hist = fit(&mut plain, &data, &cfg.base);
        let (hist, delta) = universal_adversarial_fit(&mut universal, &data, &cfg);
        assert_eq!(delta, Tensor::zeros(&[4]));
        assert_eq!(hist.losses, plain_hist.losses);
        assert_eq!(hist.accuracies, plain_hist.accuracies);
        assert_eq!(hist.universal_accuracies, plain_hist.accuracies);
        assert_eq!(plain, universal);
    }

    #[test]
    fn training_is_deterministic_and_delta_in_ball() {
        let data = boxed_dataset(50, 3);
        let cfg = UniversalTrainConfig {
            base: TrainConfig {
                epochs: 2,
                batch_size: 10,
                ..Default::default()
            },
            eps: 0.08,
            ..Default::default()
        };
        let mut m1 = mlp(4);
        let mut m2 = mlp(4);
        let (h1, d1) = universal_adversarial_fit(&mut m1, &data, &cfg);
        let (h2, d2) = universal_adversarial_fit(&mut m2, &data, &cfg);
        assert_eq!(h1, h2);
        assert_eq!(d1, d2);
        assert_eq!(m1, m2);
        assert!(d1.linf_norm() <= 0.08);
        assert_eq!(h1.losses.len(), 2);
        assert_eq!(h1.universal_accuracies.len(), 2);
    }

    #[test]
    fn hardened_model_resists_the_training_delta() {
        // After universal adversarial training, the model's accuracy
        // under its own training delta should be usable (the defense
        // converged), and the history tracks both views.
        let data = boxed_dataset(200, 5);
        let cfg = UniversalTrainConfig {
            base: TrainConfig {
                epochs: 4,
                batch_size: 16,
                lr: 0.1,
                ..Default::default()
            },
            eps: 0.1,
            ..Default::default()
        };
        let mut model = mlp(6);
        let (hist, delta) = universal_adversarial_fit(&mut model, &data, &cfg);
        let last_univ = *hist.universal_accuracies.last().unwrap();
        assert!(
            last_univ > 0.9,
            "universal accuracy after hardening: {:?}",
            hist.universal_accuracies
        );
        assert!(delta.linf_norm() <= 0.1 + 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let data = Dataset::new("empty", Vec::new(), Vec::new(), 2);
        let mut model = mlp(7);
        let _ = universal_adversarial_fit(&mut model, &data, &UniversalTrainConfig::default());
    }

    #[test]
    #[should_panic(expected = "negative budget")]
    fn negative_eps_panics() {
        let data = boxed_dataset(4, 8);
        let mut model = mlp(9);
        let cfg = UniversalTrainConfig {
            eps: -0.1,
            ..Default::default()
        };
        let _ = universal_adversarial_fit(&mut model, &data, &cfg);
    }
}
