//! Gate-level two's-complement (Baugh-Wooley) signed multiplier.
//!
//! The unsigned array multiplier of [`crate::multiplier`] covers the
//! paper's `mul8u_*` parts; this module adds a Baugh-Wooley signed
//! multiplier so the `mul8s_*` family can also be characterized at the
//! gate level (datasheets, area/power) rather than only behaviorally via
//! the sign-magnitude wrapper.
//!
//! Baugh-Wooley construction for `w x w` two's-complement operands: the
//! partial products involving exactly one sign bit are inverted, a
//! constant 1 is added at columns `w` and `2w - 1`, and the result is the
//! standard column reduction. The same approximation knobs as the
//! unsigned generator apply to the reduction.

use crate::cells::{half_adder, ApproxCell};
use crate::multiplier::ApproxSpec;
use crate::netlist::{Netlist, NodeId};

/// A `w x w` two's-complement Baugh-Wooley multiplier generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaughWooleyMultiplier {
    width: usize,
    spec: ApproxSpec,
}

impl BaughWooleyMultiplier {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `2..=8` or the spec indices are out of
    /// range (row perforation is not supported for the signed form — the
    /// sign rows are structural).
    pub fn new(width: usize, spec: ApproxSpec) -> Self {
        assert!((2..=8).contains(&width), "width {width} unsupported");
        assert!(
            spec.perforated_rows.is_empty(),
            "row perforation is not defined for the Baugh-Wooley form"
        );
        let out_bits = 2 * width;
        assert!(spec.truncate_cols <= out_bits);
        assert!(spec.loa_cols <= out_bits);
        assert!(spec.approx_cols <= out_bits);
        BaughWooleyMultiplier { width, spec }
    }

    /// The operand width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Builds the netlist: inputs `a[0..w]` then `b[0..w]` (little-endian
    /// two's complement), outputs the `2w`-bit two's-complement product.
    pub fn build(&self) -> Netlist {
        let w = self.width;
        let out_bits = 2 * w;
        let spec = &self.spec;
        let mut nl = Netlist::new(2 * w);

        let mut cols: Vec<Vec<NodeId>> = vec![Vec::new(); out_bits];
        for j in 0..w {
            for i in 0..w {
                let c = i + j;
                if c < spec.truncate_cols {
                    continue;
                }
                let ai = nl.input(i);
                let bj = nl.input(w + j);
                // Exactly one sign-bit operand: inverted partial product.
                let one_sign = (i == w - 1) ^ (j == w - 1);
                let pp = if one_sign {
                    let andv = nl.and(ai, bj);
                    nl.not(andv)
                } else {
                    nl.and(ai, bj)
                };
                cols[c].push(pp);
            }
        }
        // Baugh-Wooley correction constants at columns w and 2w-1.
        if w >= spec.truncate_cols {
            let one = nl.constant(true);
            cols[w].push(one);
        }
        if out_bits > spec.truncate_cols {
            let one = nl.constant(true);
            cols[out_bits - 1].push(one);
        }

        let zero = nl.constant(false);
        let mut outputs: Vec<NodeId> = Vec::with_capacity(out_bits);
        let mut carries: Vec<Vec<NodeId>> = vec![Vec::new(); out_bits + 1];
        for c in 0..out_bits {
            let mut bits: Vec<NodeId> = Vec::new();
            bits.append(&mut cols[c]);
            let mut incoming = std::mem::take(&mut carries[c]);
            bits.append(&mut incoming);
            if c < spec.truncate_cols {
                let forced = spec.compensate && c + 1 == spec.truncate_cols;
                let out = if forced { nl.constant(true) } else { zero };
                outputs.push(out);
                continue;
            }
            if c < spec.loa_cols {
                let out = match bits.split_first() {
                    None => zero,
                    Some((&first, rest)) => rest.iter().fold(first, |acc, &x| nl.or(acc, x)),
                };
                outputs.push(out);
                continue;
            }
            let cell = if c < spec.approx_cols {
                spec.cell
            } else {
                ApproxCell::Exact
            };
            while bits.len() > 1 {
                if bits.len() >= 3 {
                    let (x, y, z) = (
                        bits.pop().expect("len >= 3"),
                        bits.pop().expect("len >= 3"),
                        bits.pop().expect("len >= 3"),
                    );
                    let (s, cy) = cell.emit(&mut nl, x, y, z);
                    bits.push(s);
                    carries[c + 1].push(cy);
                } else {
                    let (x, y) = (bits.pop().expect("len 2"), bits.pop().expect("len 2"));
                    let (s, cy) = half_adder(&mut nl, x, y);
                    bits.push(s);
                    carries[c + 1].push(cy);
                }
            }
            outputs.push(bits.pop().unwrap_or(zero));
        }
        nl.set_outputs(outputs);
        nl
    }
}

/// Interprets a `bits`-wide little-endian word as two's complement.
pub fn as_signed(value: u64, bits: usize) -> i64 {
    let mask = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let v = value & mask;
    if bits < 64 && v >> (bits - 1) & 1 == 1 {
        (v as i64) - (1i64 << bits)
    } else {
        v as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_bw8_matches_signed_multiplication_exhaustively() {
        let nl = BaughWooleyMultiplier::new(8, ApproxSpec::exact()).build();
        let table = nl.exhaustive();
        for a in 0..256i64 {
            for b in 0..256i64 {
                let sa = as_signed(a as u64, 8);
                let sb = as_signed(b as u64, 8);
                let got = as_signed(table[((b as usize) << 8) | a as usize], 16);
                assert_eq!(got, sa * sb, "{sa} * {sb}");
            }
        }
    }

    #[test]
    fn exact_bw_small_widths() {
        for w in 2..=5usize {
            let nl = BaughWooleyMultiplier::new(w, ApproxSpec::exact()).build();
            let table = nl.exhaustive();
            for a in 0..1u64 << w {
                for b in 0..1u64 << w {
                    let sa = as_signed(a, w);
                    let sb = as_signed(b, w);
                    let got = as_signed(table[((b as usize) << w) | a as usize], 2 * w);
                    assert_eq!(got, sa * sb, "w={w} {sa}*{sb}");
                }
            }
        }
    }

    #[test]
    fn approximate_bw_errors_are_bounded() {
        let spec = ApproxSpec::exact().with_loa_cols(5);
        let nl = BaughWooleyMultiplier::new(8, spec).build();
        let table = nl.exhaustive();
        let mut max_err = 0i64;
        let mut any = false;
        for a in 0..256usize {
            for b in 0..256usize {
                let sa = as_signed(a as u64, 8);
                let sb = as_signed(b as u64, 8);
                let got = as_signed(table[(b << 8) | a], 16);
                let err = (got - sa * sb).abs();
                any |= err > 0;
                max_err = max_err.max(err);
            }
        }
        assert!(any, "LOA columns must introduce some error");
        assert!(max_err < 1 << 10, "error {max_err} out of bound");
    }

    #[test]
    fn as_signed_interprets_correctly() {
        assert_eq!(as_signed(0x7F, 8), 127);
        assert_eq!(as_signed(0x80, 8), -128);
        assert_eq!(as_signed(0xFF, 8), -1);
        assert_eq!(as_signed(0xFFFF, 16), -1);
        assert_eq!(as_signed(5, 16), 5);
    }

    #[test]
    #[should_panic(expected = "perforation")]
    fn perforation_rejected() {
        let _ = BaughWooleyMultiplier::new(8, ApproxSpec::exact().with_perforated_rows(&[0]));
    }
}
