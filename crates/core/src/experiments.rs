//! Experiment drivers behind one data-driven entry point.
//!
//! Every figure or table of the paper is described by an
//! [`ExperimentSpec`] — which models, which multiplier columns
//! ([`MultSet`]), which attacks, which [`Task`] — and executed by
//! [`run`]. The historical `run_fig4`..`run_fig8` / [`run_table2`]
//! names survive as thin wrappers that build the matching spec, so
//! existing callers (quickstart, `bench_report`) compile unchanged.
//! The `bench` crate's binaries call these and print the results;
//! `EXPERIMENTS.md` records representative runs.

use axattack::suite::AttackId;
use axdata::Dataset;
use axmul::{MulColumns, NetColumns, Registry};
use axnn::Sequential;
use axquant::{Placement, QuantModel};
use axtensor::Tensor;
use axutil::AxError;

use crate::eval::{paper_eps_grid, robustness_grid, EvalOpts};
use crate::faults::{fault_robustness_sweep, FaultReport, FaultSweepOpts};
use crate::grid::RobustnessGrid;
use crate::mtd::{mtd_robustness_sweep, MtdReport, MtdSweepOpts};
use crate::quantstudy::{quantization_study, QuantStudy};
use crate::transfer::{transferability, TransferSource, TransferTable, TransferVictim};
use crate::universal::{universal_robustness_sweep, UniversalReport, UniversalSweepOpts};

/// Sampling options shared by the figure drivers.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureOpts {
    /// Number of evaluated test examples per cell.
    pub n_eval: usize,
    /// Attack randomness seed.
    pub seed: u64,
    /// Perturbation budgets (defaults to the paper's grid).
    pub eps_grid: Vec<f32>,
}

impl FigureOpts {
    /// Quick defaults: the paper's epsilon grid with a small sample.
    pub fn quick() -> Self {
        FigureOpts {
            n_eval: 60,
            seed: 0x0DD5,
            eps_grid: paper_eps_grid(),
        }
    }

    /// Same grid with a custom sample count.
    pub fn with_n(n_eval: usize) -> Self {
        FigureOpts {
            n_eval,
            ..Self::quick()
        }
    }

    fn eval_opts(&self) -> EvalOpts {
        EvalOpts {
            eps_grid: self.eps_grid.clone(),
            n_examples: self.n_eval,
            seed: self.seed,
        }
    }
}

/// Builds a quantized victim from a float model, calibrating on the first
/// 32 images of `calib_data`.
pub fn quantize_victim(
    model: &Sequential,
    calib_data: &Dataset,
    placement: Placement,
) -> Result<QuantModel, AxError> {
    let calib: Vec<Tensor> = (0..calib_data.len().min(32))
        .map(|i| calib_data.image(i).clone())
        .collect();
    QuantModel::from_float(model, &calib, placement)
}

/// The M1..M9 multiplier columns of Figs 4-6 (LeNet-5 / MNIST).
pub fn mnist_mult_columns(reg: &Registry) -> MulColumns {
    MulColumns::from_registry(reg, &Registry::lenet_set())
}

/// The M1..M8 multiplier columns of Fig 7 (AlexNet / CIFAR-10).
pub fn cifar_mult_columns(reg: &Registry) -> MulColumns {
    MulColumns::from_registry(reg, &Registry::alexnet_set())
}

/// Which multiplier columns an [`ExperimentSpec`] evaluates.
#[derive(Debug, Clone, PartialEq)]
pub enum MultSet {
    /// The paper's M1..M9 LeNet/MNIST set ([`mnist_mult_columns`]).
    Mnist,
    /// The paper's M1..M8 AlexNet/CIFAR set ([`cifar_mult_columns`]).
    Cifar,
    /// Explicit registry names; the first is the accurate baseline.
    Named(Vec<String>),
}

impl MultSet {
    /// Resolves the set into named LUT columns.
    ///
    /// # Panics
    ///
    /// Panics if a name in [`MultSet::Named`] is not registered or the
    /// list is empty.
    pub fn columns(&self, reg: &Registry) -> MulColumns {
        match self {
            MultSet::Mnist => mnist_mult_columns(reg),
            MultSet::Cifar => cifar_mult_columns(reg),
            MultSet::Named(names) => {
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                MulColumns::from_registry(reg, &refs)
            }
        }
    }
}

/// The models and data an [`ExperimentSpec`] runs on.
#[derive(Debug)]
pub enum ModelInputs<'a> {
    /// One float source, its quantized victim and an evaluation set —
    /// the shape of every heatmap figure and the quantization study.
    Single {
        /// The trained accurate float model (attack surrogate).
        source: &'a Sequential,
        /// The quantized victim evaluated under each multiplier column.
        victim: &'a QuantModel,
        /// The evaluation dataset.
        data: &'a Dataset,
    },
    /// The four-model transferability setting of Table II.
    Transfer(&'a Table2Models<'a>),
}

/// What an [`ExperimentSpec`] computes.
#[derive(Debug, Clone, PartialEq)]
pub enum Task {
    /// One [`RobustnessGrid`] per attack (the heatmap figures).
    Heatmaps,
    /// Quantized vs. non-quantized accurate model (Fig 8).
    QuantStudy,
    /// The Table II transferability study at the given budget. The
    /// spec's [`MultSet`] must resolve to at least two columns:
    /// column 0 is the MNIST victims' LUT, column 1 the CIFAR one.
    Transfer {
        /// Perturbation budget of the crafted sets.
        eps: f32,
    },
}

/// A declarative experiment: models × multiplier columns × attacks ×
/// task. Built by the `run_fig*` wrappers, or by hand for custom
/// sweeps.
#[derive(Debug)]
pub struct ExperimentSpec<'a> {
    /// Display name (figure/table label).
    pub name: &'static str,
    /// The models and data to run on.
    pub model: ModelInputs<'a>,
    /// The multiplier columns to evaluate.
    pub mult_set: MultSet,
    /// The attacks to craft, in panel order.
    pub attacks: Vec<AttackId>,
    /// What to compute.
    pub task: Task,
}

/// What [`run`] produced — one variant per [`Task`].
#[derive(Debug)]
pub enum ExperimentResult {
    /// One grid per attack of the spec.
    Grids(Vec<RobustnessGrid>),
    /// The quantization study.
    Study(QuantStudy),
    /// `(mnist_table, cifar_table)`.
    Transfer(Box<(TransferTable, TransferTable)>),
}

impl ExperimentResult {
    /// The heatmap grids, if this was a [`Task::Heatmaps`] run.
    pub fn into_grids(self) -> Option<Vec<RobustnessGrid>> {
        match self {
            ExperimentResult::Grids(g) => Some(g),
            _ => None,
        }
    }

    /// The quantization study, if this was a [`Task::QuantStudy`] run.
    pub fn into_study(self) -> Option<QuantStudy> {
        match self {
            ExperimentResult::Study(s) => Some(s),
            _ => None,
        }
    }

    /// The transfer tables, if this was a [`Task::Transfer`] run.
    pub fn into_transfer(self) -> Option<(TransferTable, TransferTable)> {
        match self {
            ExperimentResult::Transfer(t) => Some(*t),
            _ => None,
        }
    }
}

/// Executes a declarative [`ExperimentSpec`].
///
/// # Errors
///
/// Returns [`AxError::Config`] when the task and model inputs do not
/// fit together ([`Task::Transfer`] needs [`ModelInputs::Transfer`] and
/// at least two multiplier columns; the other tasks need
/// [`ModelInputs::Single`]) or when a stage propagates a quantization
/// failure.
pub fn run(spec: &ExperimentSpec<'_>, opts: &FigureOpts) -> Result<ExperimentResult, AxError> {
    let reg = Registry::standard();
    match (&spec.task, &spec.model) {
        (
            Task::Heatmaps,
            ModelInputs::Single {
                source,
                victim,
                data,
            },
        ) => Ok(ExperimentResult::Grids(heatmaps(
            source,
            victim,
            &spec.mult_set.columns(&reg),
            &spec.attacks,
            data,
            opts,
        ))),
        (
            Task::QuantStudy,
            ModelInputs::Single {
                source,
                victim,
                data,
            },
        ) => Ok(ExperimentResult::Study(quantization_study(
            source,
            victim,
            &spec.attacks,
            data,
            &opts.eps_grid,
            opts.n_eval,
            opts.seed,
        ))),
        (Task::Transfer { eps }, ModelInputs::Transfer(models)) => {
            let columns = spec.mult_set.columns(&reg);
            if columns.len() < 2 {
                return Err(AxError::config(
                    "transfer experiments need a MNIST and a CIFAR victim column",
                ));
            }
            let attack = *spec
                .attacks
                .first()
                .ok_or_else(|| AxError::config("transfer experiments need the crafting attack"))?;
            Ok(ExperimentResult::Transfer(Box::new(transfer_tables(
                models, &columns, attack, *eps, opts,
            )?)))
        }
        _ => Err(AxError::config(
            "experiment task does not fit the provided model inputs",
        )),
    }
}

fn heatmaps(
    source: &Sequential,
    victim: &QuantModel,
    mults: &MulColumns,
    attacks: &[AttackId],
    data: &Dataset,
    opts: &FigureOpts,
) -> Vec<RobustnessGrid> {
    attacks
        .iter()
        .map(|&a| robustness_grid(source, victim, mults, a, data, &opts.eval_opts()))
        .collect()
}

/// Builds the spec behind one LeNet-5/MNIST heatmap figure.
fn mnist_heatmap_spec<'a>(
    name: &'static str,
    lenet: &'a Sequential,
    victim: &'a QuantModel,
    data: &'a Dataset,
    attacks: Vec<AttackId>,
) -> ExperimentSpec<'a> {
    ExperimentSpec {
        name,
        model: ModelInputs::Single {
            source: lenet,
            victim,
            data,
        },
        mult_set: MultSet::Mnist,
        attacks,
        task: Task::Heatmaps,
    }
}

/// Fig 4: LeNet-5/MNIST under (a) BIM-linf (b) BIM-l2 (c) FGM-linf
/// (d) FGM-l2.
pub fn run_fig4(
    lenet: &Sequential,
    victim: &QuantModel,
    data: &Dataset,
    opts: &FigureOpts,
) -> Vec<RobustnessGrid> {
    let spec = mnist_heatmap_spec(
        "fig4",
        lenet,
        victim,
        data,
        vec![
            AttackId::BimLinf,
            AttackId::BimL2,
            AttackId::FgmLinf,
            AttackId::FgmL2,
        ],
    );
    run(&spec, opts)
        .expect("heatmap specs are well-formed")
        .into_grids()
        .expect("heatmap task returns grids")
}

/// Fig 5: LeNet-5/MNIST under (a) PGD-l2 (b) PGD-linf (c) RAU-l2
/// (d) RAU-linf.
pub fn run_fig5(
    lenet: &Sequential,
    victim: &QuantModel,
    data: &Dataset,
    opts: &FigureOpts,
) -> Vec<RobustnessGrid> {
    let spec = mnist_heatmap_spec(
        "fig5",
        lenet,
        victim,
        data,
        vec![
            AttackId::PgdL2,
            AttackId::PgdLinf,
            AttackId::RauL2,
            AttackId::RauLinf,
        ],
    );
    run(&spec, opts)
        .expect("heatmap specs are well-formed")
        .into_grids()
        .expect("heatmap task returns grids")
}

/// Fig 6: LeNet-5/MNIST under (a) CR-l2 (b) RAG-l2.
pub fn run_fig6(
    lenet: &Sequential,
    victim: &QuantModel,
    data: &Dataset,
    opts: &FigureOpts,
) -> Vec<RobustnessGrid> {
    let spec = mnist_heatmap_spec(
        "fig6",
        lenet,
        victim,
        data,
        vec![AttackId::CrL2, AttackId::RagL2],
    );
    run(&spec, opts)
        .expect("heatmap specs are well-formed")
        .into_grids()
        .expect("heatmap task returns grids")
}

/// Fig 7: AlexNet/CIFAR-10 under (a) CR-l2 (b) RAG-l2 (c) RAU-l2
/// (d) RAU-linf.
pub fn run_fig7(
    alexnet: &Sequential,
    victim: &QuantModel,
    data: &Dataset,
    opts: &FigureOpts,
) -> Vec<RobustnessGrid> {
    let spec = ExperimentSpec {
        name: "fig7",
        model: ModelInputs::Single {
            source: alexnet,
            victim,
            data,
        },
        mult_set: MultSet::Cifar,
        attacks: vec![
            AttackId::CrL2,
            AttackId::RagL2,
            AttackId::RauL2,
            AttackId::RauLinf,
        ],
        task: Task::Heatmaps,
    };
    run(&spec, opts)
        .expect("heatmap specs are well-formed")
        .into_grids()
        .expect("heatmap task returns grids")
}

/// Robustness under stuck-at faults: a sampled single-fault campaign per
/// named registry multiplier, evaluated against the fault-free baseline
/// (no paper figure — the extension motivated in the ROADMAP).
///
/// # Errors
///
/// Propagates configuration errors (empty name list, empty campaign)
/// from [`fault_robustness_sweep`]; panics if a name is not registered.
pub fn run_fault_sweep(
    source: &Sequential,
    victim: &QuantModel,
    data: &Dataset,
    names: &[&str],
    opts: &FaultSweepOpts,
) -> Result<FaultReport, AxError> {
    let mults = NetColumns::from_registry(&Registry::standard(), names);
    fault_robustness_sweep(source, victim, &mults, data, opts)
}

/// Universal-perturbation robustness per named registry multiplier:
/// clean vs. universal-delta accuracy, before and after universal
/// adversarial training (no paper figure — the extension motivated in
/// the ROADMAP). Returns the report plus the crafted delta.
///
/// # Errors
///
/// Propagates configuration errors (empty name list, empty datasets)
/// from [`universal_robustness_sweep`]; panics if a name is not
/// registered.
pub fn run_universal_sweep(
    model: &Sequential,
    train: &Dataset,
    test: &Dataset,
    names: &[&str],
    opts: &UniversalSweepOpts,
) -> Result<(UniversalReport, Tensor), AxError> {
    let mults = MulColumns::from_registry(&Registry::standard(), names);
    universal_robustness_sweep(model, &mults, train, test, opts)
}

/// Moving-target defense per named registry multiplier: the full
/// `{fixed kernel, randomized ensemble} × {clean, static PGD, adaptive
/// EOT}` grid of [`mtd_robustness_sweep`] (no paper figure — the
/// extension motivated in the ROADMAP).
///
/// # Errors
///
/// Propagates configuration errors (empty evaluation sample) from
/// [`mtd_robustness_sweep`]; panics if a name is not registered or the
/// name list is empty.
pub fn run_mtd_sweep(
    source: &Sequential,
    victim: &QuantModel,
    data: &Dataset,
    names: &[&str],
    opts: &MtdSweepOpts,
) -> Result<MtdReport, AxError> {
    let columns = MulColumns::from_registry(&Registry::standard(), names);
    mtd_robustness_sweep(source, victim, &columns, data, opts)
}

/// Fig 8: quantized vs non-quantized accurate LeNet-5, all ten attacks.
pub fn run_fig8(
    lenet: &Sequential,
    victim: &QuantModel,
    data: &Dataset,
    opts: &FigureOpts,
) -> QuantStudy {
    let spec = ExperimentSpec {
        name: "fig8",
        model: ModelInputs::Single {
            source: lenet,
            victim,
            data,
        },
        mult_set: MultSet::Mnist,
        attacks: AttackId::ALL.to_vec(),
        task: Task::QuantStudy,
    };
    run(&spec, opts)
        .expect("quant-study specs are well-formed")
        .into_study()
        .expect("quant-study task returns a study")
}

/// Fig 1: the motivational case study. Four panels, each comparing the
/// accurate and one approximate part: FFNN (signed pair 1JFF/L1G, paper's
/// `AccSign`/`AxL1G`) and LeNet-5 (unsigned pair 1JFF/17KS,
/// `AccUnSign`/`Ax17KS`) under PGD-linf and CR-l2.
///
/// # Errors
///
/// Propagates quantization failures.
pub fn run_fig1(
    ffnn: &Sequential,
    lenet: &Sequential,
    data: &Dataset,
    opts: &FigureOpts,
) -> Result<Vec<RobustnessGrid>, AxError> {
    let reg = Registry::standard();
    // The FFNN has no conv layers: approximate its dense layers (the
    // signed multiplier study of Fig 1 applies approximation to the
    // whole inference engine).
    let q_ffnn = quantize_victim(ffnn, data, Placement::All)?;
    let q_lenet = quantize_victim(lenet, data, Placement::ConvOnly)?;
    let (acc_s, ax_s) = Registry::fig1_signed_pair();
    let ffnn_mults = MulColumns::from_pairs(vec![
        (
            format!("AccSign({acc_s})"),
            reg.build_lut(acc_s).expect("registered"),
        ),
        (
            format!("Ax{ax_s}"),
            reg.build_lut(ax_s).expect("registered"),
        ),
    ]);
    let (acc_u, ax_u) = Registry::fig1_unsigned_pair();
    let lenet_mults = MulColumns::from_pairs(vec![
        (
            format!("AccUnSign({acc_u})"),
            reg.build_lut(acc_u).expect("registered"),
        ),
        (
            format!("Ax{ax_u}"),
            reg.build_lut(ax_u).expect("registered"),
        ),
    ]);
    let eval = opts.eval_opts();
    Ok(vec![
        robustness_grid(ffnn, &q_ffnn, &ffnn_mults, AttackId::PgdLinf, data, &eval),
        robustness_grid(
            lenet,
            &q_lenet,
            &lenet_mults,
            AttackId::PgdLinf,
            data,
            &eval,
        ),
        robustness_grid(ffnn, &q_ffnn, &ffnn_mults, AttackId::CrL2, data, &eval),
        robustness_grid(lenet, &q_lenet, &lenet_mults, AttackId::CrL2, data, &eval),
    ])
}

/// The models entering the Table II transferability study. All four take
/// 32x32 inputs so adversarial examples transfer across architectures
/// unchanged (MNIST images are zero-padded to 32x32).
#[derive(Debug)]
pub struct Table2Models<'a> {
    /// LeNet-5 (1x32x32) trained on padded MNIST.
    pub l5_mnist: &'a Sequential,
    /// AlexNet-mini (1-channel) trained on padded MNIST.
    pub alx_mnist: &'a Sequential,
    /// LeNet-5 (3x32x32) trained on CIFAR.
    pub l5_cifar: &'a Sequential,
    /// AlexNet-mini (3-channel) trained on CIFAR.
    pub alx_cifar: &'a Sequential,
    /// Padded MNIST test set.
    pub mnist32_test: &'a Dataset,
    /// CIFAR test set.
    pub cifar_test: &'a Dataset,
}

/// Table II: transferability with BIM-linf at the paper's eps = 0.05.
/// Returns `(mnist_table, cifar_table)`. Victim AxDNNs use 17KS (MNIST)
/// and QJD (CIFAR) — representative mid-range parts, since the paper
/// does not name the victim multiplier.
///
/// # Errors
///
/// Propagates quantization failures.
pub fn run_table2(
    models: &Table2Models<'_>,
    opts: &FigureOpts,
) -> Result<(TransferTable, TransferTable), AxError> {
    let spec = ExperimentSpec {
        name: "table2",
        model: ModelInputs::Transfer(models),
        mult_set: MultSet::Named(vec!["17KS".to_string(), "QJD".to_string()]),
        attacks: vec![AttackId::BimLinf],
        task: Task::Transfer { eps: 0.05 },
    };
    Ok(run(&spec, opts)?
        .into_transfer()
        .expect("transfer task returns tables"))
}

/// The Table II engine: column 0 of `columns` is the MNIST victims'
/// LUT, column 1 the CIFAR one.
fn transfer_tables(
    models: &Table2Models<'_>,
    columns: &MulColumns,
    attack: AttackId,
    eps: f32,
    opts: &FigureOpts,
) -> Result<(TransferTable, TransferTable), AxError> {
    let mnist_lut = columns.payload(0);
    let cifar_lut = columns.payload(1);

    let q_l5_m = quantize_victim(models.l5_mnist, models.mnist32_test, Placement::ConvOnly)?;
    let q_alx_m = quantize_victim(models.alx_mnist, models.mnist32_test, Placement::ConvOnly)?;
    let q_l5_c = quantize_victim(models.l5_cifar, models.cifar_test, Placement::ConvOnly)?;
    let q_alx_c = quantize_victim(models.alx_cifar, models.cifar_test, Placement::ConvOnly)?;

    let mnist = transferability(
        &[
            TransferSource {
                name: "AccL5".into(),
                model: models.l5_mnist,
            },
            TransferSource {
                name: "AxAlx".into(),
                model: models.alx_mnist,
            },
        ],
        &[
            TransferVictim {
                name: "AxL5".into(),
                qmodel: &q_l5_m,
                mult: mnist_lut,
                data: models.mnist32_test,
            },
            TransferVictim {
                name: "AxAlx".into(),
                qmodel: &q_alx_m,
                mult: mnist_lut,
                data: models.mnist32_test,
            },
        ],
        attack,
        eps,
        opts.n_eval,
        opts.seed,
    );
    let cifar = transferability(
        &[
            TransferSource {
                name: "AccL5".into(),
                model: models.l5_cifar,
            },
            TransferSource {
                name: "AxAlx".into(),
                model: models.alx_cifar,
            },
        ],
        &[
            TransferVictim {
                name: "AxL5".into(),
                qmodel: &q_l5_c,
                mult: cifar_lut,
                data: models.cifar_test,
            },
            TransferVictim {
                name: "AxAlx".into(),
                qmodel: &q_alx_c,
                mult: cifar_lut,
                data: models.cifar_test,
            },
        ],
        attack,
        eps,
        opts.n_eval,
        opts.seed,
    );
    Ok((mnist, cifar))
}

#[cfg(test)]
mod tests {
    use super::*;
    use axdata::mnist::{MnistConfig, SynthMnist};
    use axnn::train::{fit, TrainConfig};
    use axnn::zoo;
    use axutil::rng::Rng;

    fn quick_ffnn(train: &Dataset) -> Sequential {
        let mut model = zoo::ffnn(&mut Rng::seed_from_u64(4));
        fit(
            &mut model,
            train,
            &TrainConfig {
                epochs: 2,
                lr: 0.1,
                ..Default::default()
            },
        );
        model
    }

    #[test]
    fn mult_columns_have_paper_arity() {
        let reg = Registry::standard();
        assert_eq!(mnist_mult_columns(&reg).len(), 9);
        assert_eq!(cifar_mult_columns(&reg).len(), 8);
        assert_eq!(mnist_mult_columns(&reg).name(0), "1JFF");
        assert_eq!(MultSet::Mnist.columns(&reg), mnist_mult_columns(&reg));
        assert_eq!(
            MultSet::Named(vec!["1JFF".to_string(), "L40".to_string()])
                .columns(&reg)
                .names(),
            vec!["1JFF".to_string(), "L40".to_string()]
        );
    }

    #[test]
    fn mismatched_spec_combinations_are_config_errors() {
        let train = SynthMnist::generate(&MnistConfig {
            n: 60,
            seed: 66,
            ..Default::default()
        });
        let ffnn = zoo::ffnn(&mut Rng::seed_from_u64(7));
        let q = quantize_victim(&ffnn, &train, Placement::All).unwrap();
        // A transfer task on single-model inputs cannot run.
        let spec = ExperimentSpec {
            name: "bad",
            model: ModelInputs::Single {
                source: &ffnn,
                victim: &q,
                data: &train,
            },
            mult_set: MultSet::Mnist,
            attacks: vec![AttackId::BimLinf],
            task: Task::Transfer { eps: 0.05 },
        };
        assert!(run(&spec, &FigureOpts::quick()).is_err());
    }

    #[test]
    fn run_matches_the_direct_heatmap_path() {
        let train = SynthMnist::generate(&MnistConfig {
            n: 200,
            seed: 67,
            ..Default::default()
        });
        let ffnn = quick_ffnn(&train);
        let q = quantize_victim(&ffnn, &train, Placement::All).unwrap();
        let opts = FigureOpts {
            n_eval: 12,
            seed: 8,
            eps_grid: vec![0.0, 0.1],
        };
        let spec = ExperimentSpec {
            name: "custom",
            model: ModelInputs::Single {
                source: &ffnn,
                victim: &q,
                data: &train,
            },
            mult_set: MultSet::Named(vec!["1JFF".to_string(), "L40".to_string()]),
            attacks: vec![AttackId::FgmLinf],
            task: Task::Heatmaps,
        };
        let grids = run(&spec, &opts).unwrap().into_grids().unwrap();
        let reg = Registry::standard();
        let cols = MulColumns::from_registry(&reg, &["1JFF", "L40"]);
        let direct = robustness_grid(
            &ffnn,
            &q,
            &cols,
            AttackId::FgmLinf,
            &train,
            &EvalOpts {
                eps_grid: opts.eps_grid.clone(),
                n_examples: opts.n_eval,
                seed: opts.seed,
            },
        );
        assert_eq!(grids.len(), 1);
        assert_eq!(grids[0], direct, "the spec path is a pure re-plumbing");
    }

    #[test]
    fn fig1_produces_four_two_column_panels() {
        let train = SynthMnist::generate(&MnistConfig {
            n: 300,
            seed: 61,
            ..Default::default()
        });
        let test = SynthMnist::generate(&MnistConfig {
            n: 30,
            seed: 62,
            ..Default::default()
        });
        let ffnn = quick_ffnn(&train);
        // An untrained LeNet keeps this test fast; Fig 1 semantics only
        // need the pipeline to run end to end here.
        let lenet = zoo::lenet5(&mut Rng::seed_from_u64(5));
        let opts = FigureOpts {
            n_eval: 10,
            seed: 3,
            eps_grid: vec![0.0, 0.1],
        };
        let panels = run_fig1(&ffnn, &lenet, &test, &opts).unwrap();
        assert_eq!(panels.len(), 4);
        for p in &panels {
            assert_eq!(p.mults().len(), 2);
            assert_eq!(p.eps(), &[0.0, 0.1]);
        }
        assert!(panels[0].mults()[0].starts_with("AccSign"));
        assert!(panels[1].mults()[1].starts_with("Ax"));
    }

    #[test]
    fn fault_sweep_driver_runs_on_registry_names() {
        let train = SynthMnist::generate(&MnistConfig {
            n: 300,
            seed: 64,
            ..Default::default()
        });
        let test = SynthMnist::generate(&MnistConfig {
            n: 24,
            seed: 65,
            ..Default::default()
        });
        let ffnn = quick_ffnn(&train);
        let q = quantize_victim(&ffnn, &train, Placement::All).unwrap();
        let opts = FaultSweepOpts {
            n_eval: 12,
            n_faults: 2,
            ..Default::default()
        };
        let report = run_fault_sweep(&ffnn, &q, &test, &["1JFF", "L40"], &opts).unwrap();
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].mult, "1JFF");
        assert_eq!(report.rows[0].faults.len(), 2);
    }

    #[test]
    fn quantize_victim_uses_placement() {
        let train = SynthMnist::generate(&MnistConfig {
            n: 60,
            seed: 63,
            ..Default::default()
        });
        let ffnn = zoo::ffnn(&mut Rng::seed_from_u64(6));
        let q = quantize_victim(&ffnn, &train, Placement::All).unwrap();
        assert_eq!(q.placement(), Placement::All);
    }
}
