//! Stochastic gradient descent with momentum.

use axtensor::Tensor;

use crate::model::{GradBuffer, Sequential};
use crate::plan::FPlan;

/// SGD with classical momentum and optional weight decay.
///
/// # Examples
///
/// ```
/// use axnn::optim::Sgd;
/// # use axnn::{layer::{Dense, Layer}, model::Sequential};
/// # use axtensor::Tensor;
/// # use axutil::rng::Rng;
/// # let mut rng = Rng::seed_from_u64(0);
/// # let mut model = Sequential::new("m", vec![Layer::Dense(Dense::new(2, 2, &mut rng))]);
/// let mut opt = Sgd::new(&model, 0.01, 0.9, 0.0);
/// # let x = Tensor::from_vec(vec![1.0, -1.0], &[2]);
/// let (_, grads) = model.loss_and_grads(&x, 0);
/// opt.step(&mut model, &grads);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Vec<Tensor>>,
}

impl Sgd {
    /// Creates an optimizer with velocity buffers shaped like `model`.
    pub fn new(model: &Sequential, lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum in [0, 1)");
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: model
                .layers()
                .iter()
                .map(|l| l.zero_param_grads())
                .collect(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0);
        self.lr = lr;
    }

    /// Applies one update: `v = m*v + g + wd*p; p -= lr * v`.
    ///
    /// # Panics
    ///
    /// Panics if `grads` layout does not match the model.
    pub fn step(&mut self, model: &mut Sequential, grads: &GradBuffer) {
        self.step_scaled(model, grads, 1.0);
    }

    /// Like [`Sgd::step`], but updates from `scale * grads` without
    /// materializing the scaled buffer: `v = m*v + g*scale + wd*p;
    /// p -= lr * v`.
    ///
    /// `g * scale` rounds once either way, so this is bit-identical to
    /// `grads.scale(scale)` followed by [`Sgd::step`] — the training loop
    /// uses it to turn the batched engine's *summed* gradients into a
    /// mean update (`scale = 1/n`) without an extra pass over every
    /// parameter.
    ///
    /// # Panics
    ///
    /// Panics if `grads` layout does not match the model.
    pub fn step_scaled(&mut self, model: &mut Sequential, grads: &GradBuffer, scale: f32) {
        assert_eq!(grads.layers.len(), self.velocity.len(), "layout mismatch");
        let lr = self.lr;
        let m = self.momentum;
        let wd = self.weight_decay;
        for ((layer, layer_v), layer_g) in model
            .layers_mut()
            .iter_mut()
            .zip(self.velocity.iter_mut())
            .zip(&grads.layers)
        {
            let params = layer.params_mut();
            assert_eq!(params.len(), layer_g.len(), "param count mismatch");
            for ((p, v), g) in params.into_iter().zip(layer_v.iter_mut()).zip(layer_g) {
                for ((pv, vv), &gv) in p.data_mut().iter_mut().zip(v.data_mut()).zip(g.data()) {
                    *vv = m * *vv + gv * scale + wd * *pv;
                    *pv -= lr * *vv;
                }
            }
        }
    }

    /// Like [`Sgd::step_scaled`], but writes through an *owned* plan's
    /// parameters in place ([`FPlan::with_params_mut`]) instead of the
    /// model, so training loops keep one compiled plan for the whole run
    /// — the plan repacks the conv backward panels after the update.
    /// The arithmetic (and therefore the result, per parameter element)
    /// is identical to [`Sgd::step_scaled`] on the source model.
    ///
    /// # Panics
    ///
    /// Panics if `grads` layout does not match the plan, or if the plan
    /// borrows its parameters ([`Sequential::plan_owned`] makes one that
    /// does not).
    pub fn step_plan_scaled(&mut self, plan: &mut FPlan<'_>, grads: &GradBuffer, scale: f32) {
        assert_eq!(grads.layers.len(), self.velocity.len(), "layout mismatch");
        let lr = self.lr;
        let m = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        plan.with_params_mut(|params| {
            assert_eq!(params.len(), grads.layers.len(), "layout mismatch");
            for ((layer_p, layer_v), layer_g) in params
                .iter_mut()
                .zip(velocity.iter_mut())
                .zip(&grads.layers)
            {
                assert_eq!(layer_p.len(), layer_g.len(), "param count mismatch");
                for ((p, v), g) in layer_p.iter_mut().zip(layer_v.iter_mut()).zip(layer_g) {
                    for ((pv, vv), &gv) in p.data_mut().iter_mut().zip(v.data_mut()).zip(g.data()) {
                        *vv = m * *vv + gv * scale + wd * *pv;
                        *pv -= lr * *vv;
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Layer};
    use axutil::rng::Rng;

    fn setup() -> (Sequential, Tensor) {
        let mut rng = Rng::seed_from_u64(1);
        let model = Sequential::new(
            "m",
            vec![
                Layer::Dense(Dense::new(4, 6, &mut rng)),
                Layer::Relu,
                Layer::Dense(Dense::new(6, 2, &mut rng)),
            ],
        );
        let mut x = Tensor::zeros(&[4]);
        Rng::seed_from_u64(2).fill_normal_f32(x.data_mut(), 1.0);
        (model, x)
    }

    #[test]
    fn sgd_descends_on_fixed_example() {
        let (mut model, x) = setup();
        let mut opt = Sgd::new(&model, 0.05, 0.9, 0.0);
        let (mut prev, _) = model.loss_and_grads(&x, 1);
        for _ in 0..20 {
            let (_, g) = model.loss_and_grads(&x, 1);
            opt.step(&mut model, &g);
        }
        let (after, _) = model.loss_and_grads(&x, 1);
        assert!(after < prev * 0.5, "loss {prev} -> {after}");
        prev = after;
        let _ = prev;
    }

    #[test]
    fn momentum_accelerates_versus_plain() {
        let (model, x) = setup();
        let run = |momentum: f32| {
            let mut m = model.clone();
            let mut opt = Sgd::new(&m, 0.01, momentum, 0.0);
            for _ in 0..15 {
                let (_, g) = m.loss_and_grads(&x, 0);
                opt.step(&mut m, &g);
            }
            m.loss_and_grads(&x, 0).0
        };
        assert!(run(0.9) < run(0.0), "momentum should converge faster here");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let (mut model, x) = setup();
        let norm_before: f32 = model.layers()[0].params()[0].l2_norm();
        let mut opt = Sgd::new(&model, 0.1, 0.0, 0.1);
        for _ in 0..10 {
            let (_, mut g) = model.loss_and_grads(&x, 0);
            g.scale(0.0); // isolate the decay term
            opt.step(&mut model, &g);
        }
        let norm_after: f32 = model.layers()[0].params()[0].l2_norm();
        assert!(norm_after < norm_before, "{norm_before} -> {norm_after}");
    }

    #[test]
    fn set_lr_applies() {
        let (model, _) = setup();
        let mut opt = Sgd::new(&model, 0.1, 0.0, 0.0);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lr_rejected() {
        let (model, _) = setup();
        let _ = Sgd::new(&model, 0.0, 0.0, 0.0);
    }

    #[test]
    fn step_plan_scaled_matches_model_step() {
        let (model, x) = setup();
        let (_, grads) = model.loss_and_grads(&x, 1);
        // Path A: classic in-model step.
        let mut ma = model.clone();
        let mut oa = Sgd::new(&ma, 0.05, 0.9, 1e-4);
        oa.step_scaled(&mut ma, &grads, 0.25);
        // Path B: in-place step on an owned plan, then write-back.
        let mut plan = model.plan_owned(&[4]);
        let mut ob = Sgd::new(&model, 0.05, 0.9, 1e-4);
        ob.step_plan_scaled(&mut plan, &grads, 0.25);
        let mut mb = model.clone();
        plan.store_weights_into(&mut mb);
        assert_eq!(ma, mb, "in-place plan update must be bit-identical");
    }

    #[test]
    fn step_scaled_equals_scale_then_step() {
        let (model, x) = setup();
        let (_, grads) = model.loss_and_grads(&x, 1);
        let scale = 1.0 / 7.0f32;
        // Path A: pre-scale the buffer, then plain step.
        let mut ma = model.clone();
        let mut oa = Sgd::new(&ma, 0.05, 0.9, 1e-4);
        let mut scaled = grads.clone();
        scaled.scale(scale);
        oa.step(&mut ma, &scaled);
        // Path B: fused step_scaled on the raw sum.
        let mut mb = model.clone();
        let mut ob = Sgd::new(&mb, 0.05, 0.9, 1e-4);
        ob.step_scaled(&mut mb, &grads, scale);
        assert_eq!(ma, mb, "fused scaling must be bit-identical");
    }
}
