//! Regenerates Fig 5: LeNet-5 / synth-MNIST robustness heatmaps.

use axquant::Placement;
use axrobust::experiments::{quantize_victim, run_fig5};

fn main() {
    let store = bench::store_from_env();
    let opts = bench::figure_opts_from_env();
    let lenet = store.lenet5_mnist().expect("lenet");
    let victim =
        quantize_victim(&lenet, store.mnist_train(), Placement::ConvOnly).expect("quantize");
    let panels = bench::timed("fig5", || {
        run_fig5(&lenet, &victim, store.mnist_test(), &opts)
    });
    let mut out = format!("# Fig 5 (n_eval = {})\n\n", opts.n_eval);
    for p in &panels {
        out.push_str(&p.to_text());
        out.push('\n');
    }
    bench::emit("fig5", &out);
}
