//! Prints Table I: the attack taxonomy.

use axattack::suite::table1_markdown;

fn main() {
    bench::emit(
        "table1",
        &format!(
            "# Table I: attacks, types, distance metrics\n\n{}",
            table1_markdown()
        ),
    );
}
