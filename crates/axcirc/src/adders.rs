//! Ripple-carry adders with per-bit cell selection.
//!
//! These are both useful circuits in their own right (the original
//! defensive-approximation work replaced exact full adders inside an array
//! multiplier with approximate mirror adders) and the reduction primitive
//! used by the array-multiplier generator.

use crate::cells::{half_adder, ApproxCell};
use crate::netlist::{Netlist, NodeId};

/// Builds an `n`-bit ripple-carry adder netlist: inputs `a[0..n]`,
/// `b[0..n]` (little-endian), outputs `sum[0..n]` plus a final carry bit.
///
/// `cell_for_bit(i)` chooses the adder cell used at bit position `i`,
/// allowing "lower bits approximate, upper bits exact" constructions.
///
/// # Examples
///
/// ```
/// use axcirc::adders::ripple_carry_adder;
/// use axcirc::cells::ApproxCell;
///
/// let nl = ripple_carry_adder(8, |_| ApproxCell::Exact);
/// // inputs are packed a (low 8 bits) then b (high 8 bits)
/// let out = nl.eval_bits((200u64 << 8) | 55);
/// assert_eq!(out, 255);
/// ```
pub fn ripple_carry_adder(n: usize, cell_for_bit: impl Fn(usize) -> ApproxCell) -> Netlist {
    assert!(n > 0 && 2 * n <= 64, "unsupported adder width {n}");
    let mut nl = Netlist::new(2 * n);
    let mut outputs = Vec::with_capacity(n + 1);
    let mut carry: Option<NodeId> = None;
    for i in 0..n {
        let a = nl.input(i);
        let b = nl.input(n + i);
        let (sum, cout) = match carry {
            None => match cell_for_bit(i) {
                ApproxCell::Exact => half_adder(&mut nl, a, b),
                cell => {
                    let zero = nl.constant(false);
                    cell.emit(&mut nl, a, b, zero)
                }
            },
            Some(c) => cell_for_bit(i).emit(&mut nl, a, b, c),
        };
        outputs.push(sum);
        carry = Some(cout);
    }
    outputs.push(carry.expect("n > 0 guarantees at least one bit"));
    nl.set_outputs(outputs);
    nl
}

/// Builds an `n`-bit lower-part-OR adder (LOA): the low `k` result bits are
/// the bitwise OR of the operands (no carries), the upper `n - k` bits are
/// an exact ripple-carry adder whose carry-in is `a[k-1] & b[k-1]`
/// (the classic LOA carry-approximation), or 0 when `k == 0`.
///
/// # Panics
///
/// Panics if `k > n` or the width is unsupported.
pub fn lower_or_adder(n: usize, k: usize) -> Netlist {
    assert!(k <= n, "lower part {k} exceeds width {n}");
    assert!(n > 0 && 2 * n <= 64, "unsupported adder width {n}");
    let mut nl = Netlist::new(2 * n);
    let mut outputs = Vec::with_capacity(n + 1);
    for i in 0..k {
        let a = nl.input(i);
        let b = nl.input(n + i);
        let o = nl.or(a, b);
        outputs.push(o);
    }
    let mut carry = if k == 0 {
        nl.constant(false)
    } else {
        let a = nl.input(k - 1);
        let b = nl.input(n + k - 1);
        nl.and(a, b)
    };
    for i in k..n {
        let a = nl.input(i);
        let b = nl.input(n + i);
        let (sum, cout) = ApproxCell::Exact.emit(&mut nl, a, b, carry);
        outputs.push(sum);
        carry = cout;
    }
    outputs.push(carry);
    nl.set_outputs(outputs);
    nl
}

/// Convenience: evaluates an adder netlist built by this module on concrete
/// operands, returning the `n+1`-bit result.
pub fn eval_adder(nl: &Netlist, n: usize, a: u64, b: u64) -> u64 {
    debug_assert_eq!(nl.num_inputs(), 2 * n);
    nl.eval_bits((b << n) | (a & ((1 << n) - 1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_rca_adds_exhaustively_8bit() {
        let nl = ripple_carry_adder(8, |_| ApproxCell::Exact);
        let table = nl.exhaustive();
        for a in 0..256u64 {
            for b in 0..256u64 {
                assert_eq!(table[((b << 8) | a) as usize], a + b, "{a}+{b}");
            }
        }
    }

    #[test]
    fn exact_rca_various_widths() {
        for n in [1usize, 2, 3, 5, 12, 16] {
            let nl = ripple_carry_adder(n, |_| ApproxCell::Exact);
            let mask = (1u64 << n) - 1;
            // Sample a spread of operands including the extremes.
            let samples: Vec<u64> = (0..1u64 << n.min(6))
                .chain([mask, mask.wrapping_sub(1) & mask])
                .collect();
            for &a in &samples {
                for &b in &samples {
                    assert_eq!(eval_adder(&nl, n, a, b), (a & mask) + (b & mask));
                }
            }
        }
    }

    #[test]
    fn approximate_low_bits_bound_error() {
        // Approximating the low 3 bits can change the result by at most
        // the mass those bits plus their carries control.
        let k = 3;
        let nl = ripple_carry_adder(8, |i| {
            if i < k {
                ApproxCell::SumNotCout
            } else {
                ApproxCell::Exact
            }
        });
        let table = nl.exhaustive();
        let mut max_err = 0i64;
        for a in 0..256u64 {
            for b in 0..256u64 {
                let approx = table[((b << 8) | a) as usize] as i64;
                let err = (approx - (a + b) as i64).abs();
                max_err = max_err.max(err);
            }
        }
        assert!(max_err > 0, "approximate adder must actually err");
        assert!(
            max_err < 1 << (k + 2),
            "error {max_err} exceeds low-bit mass"
        );
    }

    #[test]
    fn loa_matches_exact_when_k_zero() {
        let loa = lower_or_adder(8, 0);
        let table = loa.exhaustive();
        for a in (0..256u64).step_by(7) {
            for b in (0..256u64).step_by(5) {
                assert_eq!(table[((b << 8) | a) as usize], a + b);
            }
        }
    }

    #[test]
    fn loa_low_bits_are_or() {
        let k = 4;
        let loa = lower_or_adder(8, k);
        for (a, b) in [(0b1010u64, 0b0110u64), (0xFF, 0x01), (0x3C, 0xC3)] {
            let out = eval_adder(&loa, 8, a, b);
            assert_eq!(out & ((1 << k) - 1), (a | b) & ((1 << k) - 1));
        }
    }

    #[test]
    fn loa_error_is_bounded_by_lower_part() {
        let k = 4;
        let loa = lower_or_adder(8, k);
        let table = loa.exhaustive();
        let mut max_err = 0i64;
        for a in 0..256u64 {
            for b in 0..256u64 {
                let approx = table[((b << 8) | a) as usize] as i64;
                max_err = max_err.max((approx - (a + b) as i64).abs());
            }
        }
        assert!(max_err > 0);
        assert!(max_err <= 1 << (k + 1), "LOA error {max_err} out of bound");
    }

    #[test]
    fn full_loa_is_bitwise_or_plus_carry() {
        let loa = lower_or_adder(4, 4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let out = eval_adder(&loa, 4, a, b);
                let expect = (a | b) | (((a >> 3 & 1) & (b >> 3 & 1)) << 4);
                assert_eq!(out, expect, "{a} {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn loa_rejects_bad_k() {
        let _ = lower_or_adder(8, 9);
    }
}
