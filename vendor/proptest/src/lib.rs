//! Offline API-compatible subset of the crates.io [`proptest`] crate.
//!
//! The workspace builds without network access, so this shim provides the
//! surface the property tests in `axtensor` and `axcirc` use: the
//! [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`], range and [`any`](strategy::any) strategies,
//! [`collection::vec`], [`Strategy::prop_map`](strategy::Strategy::prop_map)
//! and [`ProptestConfig::with_cases`](test_runner::ProptestConfig::with_cases).
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test name (every run explores the same
//! inputs), and failures do not shrink — the failing input values are
//! printed instead. Swap the `[workspace.dependencies]` path entry for the
//! crates.io version when network access is available.
//!
//! [`proptest`]: https://docs.rs/proptest

#![deny(rustdoc::broken_intra_doc_links)]

pub mod strategy;
pub mod test_runner;

/// Strategies for `bool`, mirroring upstream's `proptest::bool` module.
pub mod bool {
    /// Generates `true` and `false` with equal probability.
    pub const ANY: crate::strategy::Any<::core::primitive::bool> = crate::strategy::Any::NEW;
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A range of permissible collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.uniform_usize(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Creates a strategy generating `Vec`s with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-importable API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Fails the current property-test case unless `cond` holds.
///
/// Must be used inside a [`proptest!`] body; expands to an early
/// `return Err(..)` like the upstream macro.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property-test case unless the two sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Rejects the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that draws inputs from the strategies and runs the
/// body for [`ProptestConfig::cases`](test_runner::ProptestConfig) cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(::std::stringify!($name));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                    )+
                    let outcome = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected <= 100 * config.cases + 1000,
                                "{}: too many prop_assume rejections",
                                ::std::stringify!($name),
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            let mut inputs = ::std::string::String::new();
                            $(
                                inputs.push_str(&::std::format!(
                                    "  {} = {:?}\n",
                                    ::std::stringify!($arg),
                                    &$arg,
                                ));
                            )+
                            panic!(
                                "{} failed at case {passed}: {msg}\nwith inputs:\n\
                                 {inputs}(inputs are drawn from a fixed per-test \
                                 seed; rerunning reproduces)",
                                ::std::stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
    // Default configuration (no inner attribute).
    ($($rest:tt)+) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)+
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn passing_property_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }

        #[test]
        #[should_panic(expected = "with inputs:")]
        fn failing_property_prints_inputs(x in 0u32..10) {
            prop_assert!(x > 100, "impossible: x = {x}");
        }

        #[test]
        fn assume_rejects_and_redraws(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
