//! A bounded MPSC channel with observable depth — the admission-queue
//! primitive behind `axserve`'s backpressure.
//!
//! [`std::sync::mpsc::sync_channel`] already provides a bounded buffer
//! with a non-blocking [`try_send`](std::sync::mpsc::SyncSender::try_send),
//! but it cannot answer "how full is the queue right now?", which a load-
//! shedding server needs for stats and retry-after hints. [`bounded`]
//! wraps the std channel with a shared depth counter: the sender
//! increments on a successful send, the receiver decrements on a
//! successful receive, and both sides (or anyone holding a clone of the
//! [`QueueDepth`] gauge) can read the instantaneous depth.
//!
//! The counter is advisory — between reading it and acting, other
//! threads may have moved it — but send/recv themselves stay exact:
//! admission control uses the *result* of [`BoundedSender::try_send`],
//! never the gauge, so shedding decisions are race-free.
//!
//! # Examples
//!
//! ```
//! use axutil::sync::{bounded, SendError};
//!
//! let (tx, rx) = bounded::<u32>(2);
//! tx.try_send(1).unwrap();
//! tx.try_send(2).unwrap();
//! assert_eq!(tx.depth(), 2);
//! // The buffer is full: the third send is refused, not queued.
//! assert!(matches!(tx.try_send(3), Err(SendError::Full(3))));
//! assert_eq!(rx.recv().unwrap(), 1);
//! assert_eq!(rx.depth(), 1);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TryRecvError, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// A shared gauge of how many items are buffered in a [`bounded`]
/// channel. Cheap to clone; reads are `Relaxed` (advisory).
#[derive(Debug, Clone, Default)]
pub struct QueueDepth(Arc<AtomicUsize>);

impl QueueDepth {
    /// The current number of buffered items.
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a [`BoundedSender::try_send`] was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum SendError<T> {
    /// The buffer is at capacity; the item is handed back so the caller
    /// can shed it with context.
    Full(T),
    /// The receiver is gone; the channel will never drain.
    Disconnected(T),
}

/// The sending half of a [`bounded`] channel. Clone freely; every clone
/// shares the same buffer and depth gauge.
#[derive(Debug, Clone)]
pub struct BoundedSender<T> {
    tx: mpsc::SyncSender<T>,
    depth: QueueDepth,
    capacity: usize,
}

impl<T> BoundedSender<T> {
    /// Attempts to enqueue without blocking. On success the depth gauge
    /// is incremented; a full buffer returns [`SendError::Full`]
    /// immediately — this is the load-shedding edge.
    pub fn try_send(&self, item: T) -> Result<(), SendError<T>> {
        match self.tx.try_send(item) {
            Ok(()) => {
                self.depth.0.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(item)) => Err(SendError::Full(item)),
            Err(TrySendError::Disconnected(item)) => Err(SendError::Disconnected(item)),
        }
    }

    /// The advisory buffered-item count.
    pub fn depth(&self) -> usize {
        self.depth.get()
    }

    /// The configured buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A clone of the depth gauge (for stats snapshots).
    pub fn depth_gauge(&self) -> QueueDepth {
        self.depth.clone()
    }
}

/// The receiving half of a [`bounded`] channel.
#[derive(Debug)]
pub struct BoundedReceiver<T> {
    rx: mpsc::Receiver<T>,
    depth: QueueDepth,
}

impl<T> BoundedReceiver<T> {
    /// Blocks until an item arrives or every sender is dropped.
    ///
    /// # Errors
    ///
    /// Returns `Err` when the channel is empty and disconnected.
    pub fn recv(&self) -> Result<T, mpsc::RecvError> {
        let item = self.rx.recv()?;
        self.depth.0.fetch_sub(1, Ordering::Relaxed);
        Ok(item)
    }

    /// Blocks up to `timeout` for an item.
    ///
    /// # Errors
    ///
    /// Returns the std timeout/disconnect error unchanged.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let item = self.rx.recv_timeout(timeout)?;
        self.depth.0.fetch_sub(1, Ordering::Relaxed);
        Ok(item)
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// Returns the std empty/disconnect error unchanged.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let item = self.rx.try_recv()?;
        self.depth.0.fetch_sub(1, Ordering::Relaxed);
        Ok(item)
    }

    /// The advisory buffered-item count.
    pub fn depth(&self) -> usize {
        self.depth.get()
    }

    /// A clone of the depth gauge (for stats snapshots).
    pub fn depth_gauge(&self) -> QueueDepth {
        self.depth.clone()
    }
}

/// Creates a bounded MPSC channel of the given capacity with a shared
/// depth gauge. Capacity `0` is rejected (a rendezvous channel cannot
/// buffer, so every `try_send` without a waiting receiver would shed).
///
/// # Panics
///
/// Panics if `capacity == 0`.
pub fn bounded<T>(capacity: usize) -> (BoundedSender<T>, BoundedReceiver<T>) {
    assert!(capacity > 0, "bounded channel needs capacity >= 1");
    let (tx, rx) = mpsc::sync_channel(capacity);
    let depth = QueueDepth::default();
    (
        BoundedSender {
            tx,
            depth: depth.clone(),
            capacity,
        },
        BoundedReceiver { rx, depth },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_exactly_past_capacity() {
        let (tx, rx) = bounded::<usize>(3);
        for i in 0..3 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(tx.depth(), 3);
        assert!(matches!(tx.try_send(99), Err(SendError::Full(99))));
        // Draining one frees exactly one slot.
        assert_eq!(rx.recv().unwrap(), 0);
        tx.try_send(100).unwrap();
        assert!(matches!(tx.try_send(101), Err(SendError::Full(101))));
    }

    #[test]
    fn depth_tracks_send_and_recv() {
        let (tx, rx) = bounded::<u8>(8);
        assert_eq!(rx.depth(), 0);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.depth(), 2);
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(tx.depth(), 1);
        assert!(rx.recv_timeout(Duration::from_millis(1)).is_ok());
        assert_eq!(rx.depth(), 0);
        assert!(rx.try_recv().is_err());
        assert_eq!(tx.capacity(), 8);
    }

    #[test]
    fn disconnect_is_distinguished_from_full() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(matches!(tx.try_send(7), Err(SendError::Disconnected(7))));
    }

    #[test]
    fn works_across_threads() {
        let (tx, rx) = bounded::<usize>(4);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut sent = 0usize;
                let mut i = 0usize;
                while sent < 100 {
                    if tx.try_send(i).is_ok() {
                        sent += 1;
                    }
                    i += 1;
                }
            });
            let mut got = 0;
            while got < 100 {
                if rx.recv_timeout(Duration::from_secs(5)).is_ok() {
                    got += 1;
                }
            }
        });
        assert_eq!(rx.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_is_rejected() {
        let _ = bounded::<u8>(0);
    }
}
