//! One robustness-grid cell (the unit of Figs 4-7): craft 8 adversarial
//! examples and evaluate two victims on them.

use axattack::suite::AttackId;
use axdata::mnist::{MnistConfig, SynthMnist};
use axmul::Registry;
use axnn::zoo;
use axquant::{Placement, QuantModel};
use axrobust::eval::{adversarial_accuracy, craft_adversarial_set};
use axtensor::Tensor;
use axutil::rng::Rng;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_grid_cell(c: &mut Criterion) {
    let data = SynthMnist::generate(&MnistConfig {
        n: 16,
        seed: 5,
        ..Default::default()
    });
    let model = zoo::lenet5(&mut Rng::seed_from_u64(1));
    let calib: Vec<Tensor> = (0..4).map(|i| data.image(i).clone()).collect();
    let q = QuantModel::from_float(&model, &calib, Placement::ConvOnly).unwrap();
    let reg = Registry::standard();
    let exact = reg.build_lut("1JFF").unwrap();
    let approx = reg.build_lut("17KS").unwrap();

    c.bench_function("grid_cell_craft_fgm_8imgs", |b| {
        b.iter(|| craft_adversarial_set(&model, AttackId::FgmLinf, &data, 0.1, 8, 7))
    });
    let advs = craft_adversarial_set(&model, AttackId::FgmLinf, &data, 0.1, 8, 7);
    c.bench_function("grid_cell_eval_two_victims", |b| {
        b.iter(|| {
            adversarial_accuracy(&q, &exact, &advs) + adversarial_accuracy(&q, &approx, &advs)
        })
    });
}

criterion_group!(benches, bench_grid_cell);
criterion_main!(benches);
