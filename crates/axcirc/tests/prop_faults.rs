//! Differential and semantic property tests for stuck-at fault
//! injection: the 64-lane faulted simulator against a naive per-bit
//! reference, plus the fault-model contracts (output pinning, dead-node
//! silence, duplicate/conflict rejection).

use axcirc::faults::{Fault, FaultSet, StuckAt};
use axcirc::multiplier::{ApproxSpec, ArrayMultiplier};
use axcirc::netlist::{Netlist, Node};
use proptest::prelude::*;

/// Naive single-vector reference: evaluate every node as a `bool` in
/// topological order, forcing the faulted node after it is computed —
/// deliberately independent of the word-parallel engine under test.
fn eval_bits_forced_reference(nl: &Netlist, input_bits: u64, fault: Option<Fault>) -> u64 {
    let mut vals = vec![false; nl.len()];
    for (i, node) in nl.nodes().iter().enumerate() {
        let mut v = match *node {
            Node::Input(b) => input_bits >> b & 1 == 1,
            Node::Const(c) => c,
            Node::Not(a) => !vals[a.index()],
            Node::And(a, b) => vals[a.index()] & vals[b.index()],
            Node::Or(a, b) => vals[a.index()] | vals[b.index()],
            Node::Xor(a, b) => vals[a.index()] ^ vals[b.index()],
            Node::Nand(a, b) => !(vals[a.index()] & vals[b.index()]),
            Node::Nor(a, b) => !(vals[a.index()] | vals[b.index()]),
            Node::Xnor(a, b) => !(vals[a.index()] ^ vals[b.index()]),
        };
        if let Some(f) = fault {
            if f.node.index() == i {
                v = f.stuck == StuckAt::One;
            }
        }
        vals[i] = v;
    }
    nl.outputs()
        .iter()
        .enumerate()
        .fold(0u64, |acc, (k, o)| acc | ((vals[o.index()] as u64) << k))
}

/// An 8x8 multiplier netlist drawn from the full approximation knob
/// space (truncation, LOA, approximate cells, row perforation). The
/// knobs are sampled as plain integers by the proptest macro and folded
/// into a spec here.
fn knobbed_multiplier(
    trunc: usize,
    loa: usize,
    approx: usize,
    perf_row: usize,
    comp: bool,
) -> Netlist {
    let mut spec = ApproxSpec::exact()
        .with_truncate_cols(trunc)
        .with_loa_cols(loa)
        .with_approx_cols(approx, axcirc::ApproxCell::SumNotCout);
    if comp && trunc > 0 {
        spec = spec.with_compensation();
    }
    if perf_row > 0 {
        spec = spec.with_perforated_rows(&[perf_row]);
    }
    ArrayMultiplier::new(8, spec).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For random approximate multipliers and random single faults, the
    /// word-parallel faulted pass agrees with the per-bit reference on
    /// all 64 lanes of random input words.
    #[test]
    fn word_parallel_matches_per_bit_reference(
        trunc in 0usize..6,
        loa in 0usize..6,
        approx in 0usize..8,
        perf_row in 0usize..3,
        comp in any::<bool>(),
        site in 0usize..4096,
        sa1 in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let nl = knobbed_multiplier(trunc, loa, approx, perf_row, comp);
        let fault = Fault::new(
            nl.node_id(site % nl.len()),
            if sa1 { StuckAt::One } else { StuckAt::Zero },
        );
        let faults = FaultSet::single(fault);
        // 16 pseudo-random input words from a splitmix-style scramble.
        let words: Vec<u64> = (0..16u64)
            .map(|k| {
                let mut z = seed ^ (k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^ (z >> 31)
            })
            .collect();
        let out = nl.eval_words_with_faults(&words, &faults);
        for lane in 0..64 {
            let bits: u64 = (0..16)
                .map(|k| (words[k as usize] >> lane & 1) << k)
                .sum();
            let expect = eval_bits_forced_reference(&nl, bits, Some(fault));
            let got: u64 = (0..out.len())
                .map(|k| (out[k] >> lane & 1) << k as u64)
                .sum();
            prop_assert_eq!(got, expect);
        }
    }

    /// The empty fault set is bit-identical to the fault-free simulator
    /// over the full 2^16 exhaustive grid.
    #[test]
    fn empty_fault_set_is_fault_free(
        trunc in 0usize..6,
        loa in 0usize..6,
        approx in 0usize..8,
        perf_row in 0usize..3,
        comp in any::<bool>(),
    ) {
        let nl = knobbed_multiplier(trunc, loa, approx, perf_row, comp);
        prop_assert_eq!(
            nl.exhaustive_with_faults(&FaultSet::empty()),
            nl.exhaustive()
        );
    }
}

/// A stuck-at fault on an output node pins exactly that output bit
/// across all 2^16 points and leaves every other bit untouched.
#[test]
fn output_fault_pins_exactly_that_bit() {
    let nl = ArrayMultiplier::new(8, ApproxSpec::exact()).build();
    let clean = nl.exhaustive_u16();
    for (k, &out) in nl.outputs().iter().enumerate() {
        for stuck in [StuckAt::Zero, StuckAt::One] {
            let faults = FaultSet::single(Fault::new(out, stuck));
            let faulty = nl.exhaustive_u16_with_faults(&faults);
            let pin = (stuck == StuckAt::One) as u16;
            for (i, (&f, &c)) in faulty.iter().zip(&clean).enumerate() {
                assert_eq!(
                    f ^ c,
                    (f ^ c) & (1 << k),
                    "fault on output {k} leaked to other bits at point {i}"
                );
                assert_eq!(f >> k & 1, pin, "output {k} not pinned to {stuck}");
            }
        }
    }
}

/// Faults on nodes outside the output cone never change the exhaustive
/// table. The exact array multiplier has such dead nodes (carry-outs
/// pushed past the last column).
#[test]
fn dead_node_faults_are_silent() {
    let nl = ArrayMultiplier::new(8, ApproxSpec::exact()).build();
    let cone = nl.output_cone();
    let dead: Vec<usize> = (0..nl.len()).filter(|&i| !cone[i]).collect();
    assert!(
        !dead.is_empty(),
        "expected dangling carry logic in the array multiplier"
    );
    let clean = nl.exhaustive_u16();
    for &i in dead.iter().take(4) {
        for stuck in [StuckAt::Zero, StuckAt::One] {
            let faults = FaultSet::single(Fault::new(nl.node_id(i), stuck));
            assert_eq!(
                nl.exhaustive_u16_with_faults(&faults),
                clean,
                "dead node n{i} ({stuck}) must not reach an output"
            );
        }
    }
}

/// The testability scan agrees with the semantic facts above: dead
/// nodes score zero, live output faults score high.
#[test]
fn testability_report_matches_cone_and_outputs() {
    let nl = ArrayMultiplier::new(8, ApproxSpec::exact().with_truncate_cols(2)).build();
    let report = nl.testability_report();
    assert_eq!(report.points(), 1 << 16);
    let cone = nl.output_cone();
    for e in report.entries() {
        if !cone[e.fault.node.index()] {
            assert_eq!(e.observability, 0.0, "dead {} observable", e.fault);
        }
        assert!((0.0..=1.0).contains(&e.observability));
    }
    // Output-node faults are observable wherever the clean bit differs
    // from the forced level — always at some point for a real product bit.
    let lsb = Fault::new(nl.outputs()[2], StuckAt::One);
    assert!(report.observability_of(lsb).unwrap() > 0.5);
}

#[test]
#[should_panic(expected = "duplicate stuck-at faults")]
fn duplicate_faults_are_rejected() {
    let nl = ArrayMultiplier::new(8, ApproxSpec::exact()).build();
    let f = Fault::new(nl.node_id(40), StuckAt::Zero);
    let _ = FaultSet::new(vec![f, f]);
}

#[test]
#[should_panic(expected = "conflicting stuck-at faults")]
fn conflicting_faults_are_rejected() {
    let nl = ArrayMultiplier::new(8, ApproxSpec::exact()).build();
    let _ = FaultSet::new(vec![
        Fault::new(nl.node_id(40), StuckAt::Zero),
        Fault::new(nl.node_id(40), StuckAt::One),
    ]);
}
