//! The shared error type for the workspace.

use std::fmt;

/// Errors surfaced by the AxDNN reproduction crates.
///
/// The variants are deliberately coarse: this is a research codebase and
/// callers mostly either propagate or print. Every variant carries a
/// human-readable message.
#[derive(Debug)]
#[non_exhaustive]
pub enum AxError {
    /// An I/O failure (artifact load/store).
    Io(std::io::Error),
    /// A malformed serialized artifact (bad magic, truncated, wrong version).
    Format(String),
    /// Incompatible tensor/layer shapes.
    Shape(String),
    /// An invalid configuration value.
    Config(String),
}

impl AxError {
    /// Creates a [`AxError::Format`] from any displayable message.
    pub fn format(msg: impl fmt::Display) -> Self {
        AxError::Format(msg.to_string())
    }

    /// Creates a [`AxError::Shape`] from any displayable message.
    pub fn shape(msg: impl fmt::Display) -> Self {
        AxError::Shape(msg.to_string())
    }

    /// Creates a [`AxError::Config`] from any displayable message.
    pub fn config(msg: impl fmt::Display) -> Self {
        AxError::Config(msg.to_string())
    }
}

impl fmt::Display for AxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxError::Io(e) => write!(f, "i/o error: {e}"),
            AxError::Format(m) => write!(f, "malformed artifact: {m}"),
            AxError::Shape(m) => write!(f, "shape mismatch: {m}"),
            AxError::Config(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for AxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AxError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AxError {
    fn from(e: std::io::Error) -> Self {
        AxError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            AxError::format("bad magic"),
            AxError::shape("2x3 vs 4x5"),
            AxError::config("epsilon must be >= 0"),
            AxError::from(std::io::Error::other("x")),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AxError>();
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error as _;
        let e = AxError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
    }
}
