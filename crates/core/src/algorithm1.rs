//! A line-by-line transcription of the paper's Algorithm 1
//! ("Robustness Evaluation").
//!
//! The [`eval`](crate::eval) module implements the same computation in a
//! vectorized, multiplier-batched layout; this module keeps the paper's
//! outer structure (loop over budgets, one victim at a time) for
//! fidelity while running each budget's inner loop on the batched
//! engines — crafting the whole test set in one
//! [`axattack::Attack::craft_batch`] call and scoring it in one
//! [`axquant::QPlan`] batch pass — and the tests pin both
//! implementations to each other.

use axattack::suite::AttackId;
use axdata::Dataset;
use axmul::MulLut;
use axnn::Sequential;
use axquant::{Placement, QLevel, QuantModel};
use axutil::{rng::Rng, AxError};

/// Inputs of Algorithm 1.
#[derive(Debug, Clone)]
pub struct Algorithm1Inputs<'a> {
    /// Type of multiplier used by the victim (`mults` in the paper; the
    /// accurate part generates the adversarial examples).
    pub mult: &'a MulLut,
    /// Type of adversarial attack.
    pub attack: AttackId,
    /// Perturbation budgets (`eps = [0, p]`).
    pub eps: Vec<f32>,
    /// Labelled test set `D = (X_t, L_t)`.
    pub data: &'a Dataset,
    /// Number of test examples to use from `data`.
    pub size: usize,
    /// Quantization level (`Qlevel` in the paper; 8-bit in its experiments).
    pub qlevel: QLevel,
    /// Accuracy threshold `A_th` the trained model must exceed (line 2).
    pub accuracy_threshold: f32,
    /// Attack randomness seed.
    pub seed: u64,
}

/// Output of Algorithm 1: percentage robustness per budget.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessLevels {
    /// The evaluated budgets.
    pub eps: Vec<f32>,
    /// `R_levels(eps)` in percent (line 15).
    pub robustness_pct: Vec<f32>,
}

/// Runs Algorithm 1 for one victim multiplier.
///
/// `model` is the trained accurate DNN (line 1 is the caller's training
/// step); this function performs lines 2-17: threshold check, adversarial
/// example generation with the accurate multiplier, fixed-point
/// quantization of the inference model, attack evaluation and the
/// robustness computation.
///
/// # Errors
///
/// Returns [`AxError::Config`] if the model accuracy is below the
/// threshold (line 2) or quantization fails.
pub fn evaluate_robustness(
    model: &Sequential,
    inputs: &Algorithm1Inputs<'_>,
) -> Result<RobustnessLevels, AxError> {
    let size = inputs.size.min(inputs.data.len());
    // Line 2: if Accuracy(model) >= A_th
    let clean = model.accuracy(inputs.data, size);
    if clean < inputs.accuracy_threshold {
        return Err(AxError::config(format!(
            "trained model accuracy {clean:.3} below threshold {:.3}",
            inputs.accuracy_threshold
        )));
    }
    // Line 7: fixed-point quantization of the inference model.
    let calib: Vec<_> = (0..size.min(32))
        .map(|i| inputs.data.image(i).clone())
        .collect();
    let qmdl =
        QuantModel::from_float_with_level(model, &calib, Placement::ConvOnly, inputs.qlevel)?;
    // Compile the victim's execution plan once and reuse it per budget.
    let qplan = qmdl.plan(inputs.data.image(0).dims());
    let attack = inputs.attack.build();
    let images: Vec<_> = (0..size).map(|k| inputs.data.image(k).clone()).collect();
    let labels: Vec<usize> = (0..size).map(|k| inputs.data.label(k)).collect();

    let mut robustness = Vec::with_capacity(inputs.eps.len());
    // Line 3: for j = 1 : length(eps)
    for (j, &eps) in inputs.eps.iter().enumerate() {
        // Line 6 (hoisted over line 5's loop): adversarial example
        // generation with the accurate multiplier (float model =
        // accurate-multiplier inference), batched over the test set with
        // one derived base stream per (seed, eps, j) cell.
        let base = Rng::seed_from_u64(inputs.seed)
            .derive(((eps.to_bits() as u64) << 20) ^ ((j as u64) << 52));
        let advs = attack.craft_batch(model, &images, &labels, eps, &base);
        // Line 8: adversarial attack on the quantized model with the
        // victim's multiplier, one batched pass over the crafted set.
        let preds = qplan.predict_batch_indexed(size, |k| &advs[k], &[inputs.mult]);
        // Lines 9-13 and 15: count misclassifications and compute
        // R_levels(eps(j)) = (1 - adv / size(D)) * 100.
        let adv = preds
            .iter()
            .zip(&labels)
            .filter(|(row, &label)| row[0] != label)
            .count();
        robustness.push((1.0 - adv as f32 / size as f32) * 100.0);
    }
    Ok(RobustnessLevels {
        eps: inputs.eps.clone(),
        robustness_pct: robustness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use axdata::mnist::{MnistConfig, SynthMnist};
    use axmul::Registry;
    use axnn::train::{fit, TrainConfig};
    use axnn::zoo;

    fn trained_ffnn() -> (Sequential, Dataset) {
        let train = SynthMnist::generate(&MnistConfig {
            n: 400,
            seed: 31,
            ..Default::default()
        });
        let test = SynthMnist::generate(&MnistConfig {
            n: 50,
            seed: 32,
            ..Default::default()
        });
        let mut model = zoo::ffnn(&mut axutil::rng::Rng::seed_from_u64(8));
        fit(
            &mut model,
            &train,
            &TrainConfig {
                epochs: 2,
                lr: 0.1,
                ..Default::default()
            },
        );
        (model, test)
    }

    #[test]
    fn robustness_decreases_with_budget_and_matches_eval() {
        let (model, test) = trained_ffnn();
        let reg = Registry::standard();
        let lut = reg.build_lut("1JFF").unwrap();
        let inputs = Algorithm1Inputs {
            mult: &lut,
            attack: AttackId::BimLinf,
            eps: vec![0.0, 0.3],
            data: &test,
            size: 30,
            qlevel: QLevel::INT8,
            accuracy_threshold: 0.5,
            seed: 77,
        };
        let r = evaluate_robustness(&model, &inputs).unwrap();
        assert_eq!(r.eps.len(), 2);
        assert!(r.robustness_pct[0] > 50.0);
        assert!(
            r.robustness_pct[1] < r.robustness_pct[0],
            "BIM-linf at 0.3 must hurt: {:?}",
            r.robustness_pct
        );
    }

    #[test]
    fn threshold_gate_fires() {
        let (model, test) = trained_ffnn();
        let reg = Registry::standard();
        let lut = reg.build_lut("1JFF").unwrap();
        let inputs = Algorithm1Inputs {
            mult: &lut,
            attack: AttackId::FgmL2,
            eps: vec![0.0],
            data: &test,
            size: 30,
            qlevel: QLevel::INT8,
            accuracy_threshold: 1.01, // impossible
            seed: 1,
        };
        assert!(evaluate_robustness(&model, &inputs).is_err());
    }

    #[test]
    fn eps_zero_robustness_equals_clean_accuracy() {
        let (model, test) = trained_ffnn();
        let reg = Registry::standard();
        let lut = reg.build_lut("1JFF").unwrap();
        let inputs = Algorithm1Inputs {
            mult: &lut,
            attack: AttackId::CrL2,
            eps: vec![0.0],
            data: &test,
            size: 40,
            qlevel: QLevel::INT8,
            accuracy_threshold: 0.3,
            seed: 5,
        };
        let r = evaluate_robustness(&model, &inputs).unwrap();
        // Compare against the vectorized engine's clean accuracy.
        let calib: Vec<_> = (0..32).map(|i| test.image(i).clone()).collect();
        let q = QuantModel::from_float(&model, &calib, Placement::ConvOnly).unwrap();
        let clean = q.accuracy_with(&test, &lut, 40) * 100.0;
        assert!((r.robustness_pct[0] - clean).abs() < 1e-4);
    }
}
