//! Dataset preparation and trained-model caching.
//!
//! Figure binaries need five trained models (LeNet-5 and FFNN on
//! synthetic MNIST, AlexNet-mini on synthetic CIFAR, plus the 32x32
//! MNIST/CIFAR variants for the transferability table). All of them go
//! through [`axnn::train::fit`], i.e. the batched plan engine: training
//! is deterministic *and thread-invariant* (bit-identical weights for
//! any `AXDNN_THREADS`), so models are cached as `.axm` artifacts keyed
//! by architecture, training-set size, epochs and seed; a second run of
//! any experiment — on any machine parallelism — loads instead of
//! retraining.
//!
//! Those guarantees survived `fit`'s move to in-place plan weights: the
//! whole run now updates one owned plan (no per-step recompile) and the
//! register-tiled GEMM tier is bit-identical to the scalar reference
//! for **either** `AXDNN_KERNEL` setting, so `.axm` artifacts trained
//! before and after the kernel work — and under any kernel/thread
//! combination — carry the same bits (pinned by
//! `axnn/tests/prop_train.rs` and `prop_kernels.rs`).

use std::cell::OnceCell;
use std::path::PathBuf;

use axdata::cifar::{CifarConfig, SynthCifar};
use axdata::mnist::{MnistConfig, SynthMnist};
use axdata::Dataset;
use axnn::serialize::{load_model, save_model};
use axnn::train::{fit, TrainConfig};
use axnn::zoo;
use axnn::Sequential;
use axutil::{rng::Rng, AxError};

/// Sizing and training configuration for the store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Artifact directory for cached weights.
    pub dir: PathBuf,
    /// Synthetic MNIST training-set size.
    pub mnist_train: usize,
    /// Synthetic MNIST test-set size.
    pub mnist_test: usize,
    /// Synthetic CIFAR training-set size.
    pub cifar_train: usize,
    /// Synthetic CIFAR test-set size.
    pub cifar_test: usize,
    /// Training-set size for the auxiliary 32x32 models (Table II).
    pub table2_train: usize,
    /// Training hyper-parameters for the MNIST models.
    pub mnist_cfg: TrainConfig,
    /// Training hyper-parameters for the CIFAR models.
    pub cifar_cfg: TrainConfig,
    /// Training hyper-parameters for the auxiliary 32x32 models; gentler
    /// learning rate — the larger flattening conv of the 32-pixel LeNet
    /// variant diverges at the 28-pixel model's rate.
    pub aux_cfg: TrainConfig,
    /// Master seed (datasets and weight init derive from it).
    pub seed: u64,
}

impl StoreConfig {
    /// A laptop-quick configuration (seconds of training; accuracies a few
    /// points below the full configuration).
    pub fn quick(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            mnist_train: 2_000,
            mnist_test: 400,
            cifar_train: 1_500,
            cifar_test: 300,
            table2_train: 1_200,
            mnist_cfg: TrainConfig {
                epochs: 2,
                lr: 0.08,
                verbose: true,
                ..Default::default()
            },
            cifar_cfg: TrainConfig {
                epochs: 4,
                lr: 0.04,
                lr_decay: 0.8,
                verbose: true,
                ..Default::default()
            },
            aux_cfg: TrainConfig {
                epochs: 3,
                lr: 0.04,
                lr_decay: 0.8,
                verbose: true,
                ..Default::default()
            },
            seed: 0xBEEF,
        }
    }

    /// The full configuration used for `EXPERIMENTS.md` (minutes of
    /// training on a laptop; reaches the paper-scale baselines).
    pub fn full(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            mnist_train: 8_000,
            mnist_test: 1_000,
            cifar_train: 4_000,
            cifar_test: 600,
            table2_train: 2_500,
            mnist_cfg: TrainConfig {
                epochs: 4,
                lr: 0.08,
                verbose: true,
                ..Default::default()
            },
            cifar_cfg: TrainConfig {
                epochs: 6,
                lr: 0.04,
                lr_decay: 0.8,
                verbose: true,
                ..Default::default()
            },
            aux_cfg: TrainConfig {
                epochs: 4,
                lr: 0.04,
                lr_decay: 0.8,
                verbose: true,
                ..Default::default()
            },
            seed: 0xBEEF,
        }
    }
}

/// Deterministic dataset + cached-model provider.
#[derive(Debug)]
pub struct ModelStore {
    cfg: StoreConfig,
    mnist_train: OnceCell<Dataset>,
    mnist_test: OnceCell<Dataset>,
    cifar_train: OnceCell<Dataset>,
    cifar_test: OnceCell<Dataset>,
}

impl ModelStore {
    /// Creates a store.
    pub fn new(cfg: StoreConfig) -> Self {
        ModelStore {
            cfg,
            mnist_train: OnceCell::new(),
            mnist_test: OnceCell::new(),
            cifar_train: OnceCell::new(),
            cifar_test: OnceCell::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// The MNIST training set.
    pub fn mnist_train(&self) -> &Dataset {
        self.mnist_train.get_or_init(|| {
            SynthMnist::generate(&MnistConfig {
                n: self.cfg.mnist_train,
                seed: self.cfg.seed ^ 0x11,
                ..Default::default()
            })
        })
    }

    /// The MNIST test set (disjoint seed from training).
    pub fn mnist_test(&self) -> &Dataset {
        self.mnist_test.get_or_init(|| {
            SynthMnist::generate(&MnistConfig {
                n: self.cfg.mnist_test,
                seed: self.cfg.seed ^ 0x22,
                ..Default::default()
            })
        })
    }

    /// The CIFAR training set.
    pub fn cifar_train(&self) -> &Dataset {
        self.cifar_train.get_or_init(|| {
            SynthCifar::generate(&CifarConfig {
                n: self.cfg.cifar_train,
                seed: self.cfg.seed ^ 0x33,
                ..Default::default()
            })
        })
    }

    /// The CIFAR test set.
    pub fn cifar_test(&self) -> &Dataset {
        self.cifar_test.get_or_init(|| {
            SynthCifar::generate(&CifarConfig {
                n: self.cfg.cifar_test,
                seed: self.cfg.seed ^ 0x44,
                ..Default::default()
            })
        })
    }

    /// MNIST sets zero-padded to 32x32 (for the transferability study).
    pub fn mnist32(&self) -> (Dataset, Dataset) {
        (
            self.mnist_train().padded_to(32, 32),
            self.mnist_test().padded_to(32, 32),
        )
    }

    fn cache_path(&self, arch: &str, train_n: usize, cfg: &TrainConfig) -> PathBuf {
        self.cfg.dir.join(format!(
            "{arch}-n{train_n}-e{}-s{:x}.axm",
            cfg.epochs, self.cfg.seed
        ))
    }

    fn train_or_load(
        &self,
        arch: &str,
        init_seed: u64,
        build: impl FnOnce(&mut Rng) -> Sequential,
        data: &Dataset,
        cfg: &TrainConfig,
    ) -> Result<Sequential, AxError> {
        let path = self.cache_path(arch, data.len(), cfg);
        if let Ok(model) = load_model(&path) {
            return Ok(model);
        }
        let mut model = build(&mut Rng::seed_from_u64(self.cfg.seed ^ init_seed));
        if cfg.verbose {
            eprintln!(
                "[store] training {arch} on {} examples ({} epochs)...",
                data.len(),
                cfg.epochs
            );
        }
        fit(&mut model, data, cfg);
        save_model(&model, &path)?;
        Ok(model)
    }

    /// LeNet-5 trained on synthetic MNIST (Figs 4-6, 8).
    pub fn lenet5_mnist(&self) -> Result<Sequential, AxError> {
        let data = self.mnist_train().clone();
        self.train_or_load(
            "lenet5-mnist",
            0xA1,
            zoo::lenet5,
            &data,
            &self.cfg.mnist_cfg.clone(),
        )
    }

    /// FFNN trained on synthetic MNIST (Fig 1).
    pub fn ffnn_mnist(&self) -> Result<Sequential, AxError> {
        let data = self.mnist_train().clone();
        self.train_or_load(
            "ffnn-mnist",
            0xA2,
            zoo::ffnn,
            &data,
            &self.cfg.mnist_cfg.clone(),
        )
    }

    /// AlexNet-mini trained on synthetic CIFAR (Fig 7, Table II).
    pub fn alexnet_cifar(&self) -> Result<Sequential, AxError> {
        let data = self.cifar_train().clone();
        self.train_or_load(
            "alexnet-cifar",
            0xA3,
            zoo::alexnet_mini,
            &data,
            &self.cfg.cifar_cfg.clone(),
        )
    }

    /// LeNet-5 (32x32, 3-channel) trained on synthetic CIFAR (Table II).
    pub fn lenet5_cifar(&self) -> Result<Sequential, AxError> {
        let data = self.cifar_train().take(self.cfg.table2_train);
        self.train_or_load(
            "lenet5-cifar",
            0xA4,
            |rng| zoo::lenet5_for(3, 32, rng),
            &data,
            &self.cfg.aux_cfg.clone(),
        )
    }

    /// LeNet-5 (32x32, 1-channel) trained on padded MNIST (Table II).
    pub fn lenet5_mnist32(&self) -> Result<Sequential, AxError> {
        let (train, _) = self.mnist32();
        self.train_or_load(
            "lenet5-mnist32",
            0xA5,
            |rng| zoo::lenet5_for(1, 32, rng),
            &train.take(self.cfg.table2_train),
            &self.cfg.aux_cfg.clone(),
        )
    }

    /// AlexNet-mini (1-channel) trained on padded MNIST (Table II).
    pub fn alexnet_mnist32(&self) -> Result<Sequential, AxError> {
        let (train, _) = self.mnist32();
        self.train_or_load(
            "alexnet-mnist32",
            0xA6,
            |rng| zoo::alexnet_mini_for(1, rng),
            &train.take(self.cfg.table2_train),
            &self.cfg.aux_cfg.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_store(tag: &str) -> ModelStore {
        let dir = std::env::temp_dir().join(format!("axrobust-store-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = StoreConfig::quick(dir);
        cfg.mnist_train = 200;
        cfg.mnist_test = 40;
        cfg.cifar_train = 100;
        cfg.cifar_test = 30;
        cfg.table2_train = 100;
        cfg.mnist_cfg.epochs = 1;
        cfg.mnist_cfg.verbose = false;
        cfg.cifar_cfg.epochs = 1;
        cfg.cifar_cfg.verbose = false;
        cfg.aux_cfg.epochs = 1;
        cfg.aux_cfg.verbose = false;
        ModelStore::new(cfg)
    }

    #[test]
    fn datasets_are_memoized_and_sized() {
        let store = tiny_store("data");
        let a = store.mnist_train() as *const _;
        let b = store.mnist_train() as *const _;
        assert_eq!(a, b, "second call must reuse the first dataset");
        assert_eq!(store.mnist_train().len(), 200);
        assert_eq!(store.cifar_test().len(), 30);
        let (tr32, te32) = store.mnist32();
        assert_eq!(tr32.image(0).dims(), &[1, 32, 32]);
        assert_eq!(te32.len(), 40);
    }

    #[test]
    fn training_caches_to_disk_and_reloads() {
        let store = tiny_store("cache");
        let m1 = store.ffnn_mnist().unwrap();
        // Second call must hit the artifact cache and return identical weights.
        let m2 = store.ffnn_mnist().unwrap();
        assert_eq!(m1, m2);
        // The artifact file must exist.
        let files: Vec<_> = std::fs::read_dir(&store.config().dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert!(
            files.iter().any(|f| f.starts_with("ffnn-mnist")),
            "{files:?}"
        );
        let _ = std::fs::remove_dir_all(&store.config().dir);
    }
}
