//! Moving-target kernel ensembles: a [`QuantModel`] that answers each
//! query through a multiplier sampled from a configured distribution.
//!
//! MTDeep-style moving-target defense randomizes which network answers
//! each query; the multiplier registry makes the approximate-computing
//! analogue nearly free — one quantized model, many kernels, and a
//! per-query kernel choice the attacker cannot pin down. [`KernelPolicy`]
//! holds the sampling distribution, [`EnsembleModel`] pairs it with a
//! model and a [`MulColumns`] kernel set and routes inference through the
//! batched [`QPlan`] engine, grouping queries by sampled kernel so
//! ensemble inference stays batched.
//!
//! **Determinism contract.** The kernel for query `q` is drawn from
//! `Rng::seed_from_u64(seed).derive(q)` — a function of `(seed, q)`
//! alone. Batch chunking, thread count (`AXDNN_THREADS`) and evaluation
//! order cannot change which kernel answers which query, so ensemble
//! accuracy is bit-identical across thread counts. A single-kernel
//! ensemble degenerates to the fixed-kernel path exactly: every query
//! lands in one group, evaluated in index order by the same batched
//! pass `accuracy_with` uses.

use axmul::{MulColumns, MulLut};
use axtensor::Tensor;
use axutil::rng::Rng;

use crate::plan::QPlan;
use crate::qmodel::QuantModel;

/// A sampling distribution over kernel columns, keyed by query index.
///
/// The draw for query `q` depends only on `(seed, q)`: policies are
/// stateless, so the same query index always resolves to the same
/// kernel no matter which thread, batch or replay evaluates it.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPolicy {
    weights: Vec<f32>,
    seed: u64,
}

impl KernelPolicy {
    /// A uniform distribution over `n` kernels.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (an empty ensemble cannot answer queries).
    pub fn uniform(n: usize, seed: u64) -> KernelPolicy {
        assert!(n > 0, "ensemble policy requires at least one kernel");
        KernelPolicy {
            weights: vec![1.0; n],
            seed,
        }
    }

    /// A weighted distribution; `weights[i]` is the unnormalized
    /// probability mass of kernel column `i`. Zero-weight columns are
    /// never sampled.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight is negative or
    /// non-finite, or the total mass is zero.
    pub fn weighted(weights: Vec<f32>, seed: u64) -> KernelPolicy {
        assert!(
            !weights.is_empty(),
            "ensemble policy requires at least one kernel"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "ensemble weights must be finite and non-negative: {weights:?}"
        );
        assert!(
            weights.iter().sum::<f32>() > 0.0,
            "ensemble weights must carry positive total probability mass"
        );
        KernelPolicy { weights, seed }
    }

    /// Number of kernel columns the policy distributes over.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Always `false`: emptiness is rejected at construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The normalized probability of column `i`.
    pub fn probability(&self, i: usize) -> f32 {
        self.weights[i] / self.weights.iter().sum::<f32>()
    }

    /// The kernel column answering query `query`: a pure function of
    /// `(seed, query)` via a derived [`Rng`] stream.
    pub fn sample(&self, query: u64) -> usize {
        let total: f32 = self.weights.iter().sum();
        let u = Rng::seed_from_u64(self.seed).derive(query).next_f32() * total;
        let mut acc = 0.0f32;
        let mut last = 0;
        for (i, &w) in self.weights.iter().enumerate() {
            if w > 0.0 {
                last = i;
                acc += w;
                if u < acc {
                    return i;
                }
            }
        }
        // Float round-off can leave `u == total`; the last positive-mass
        // column absorbs it.
        last
    }
}

/// A quantized model fronted by a randomized kernel ensemble.
///
/// Query `i` of an evaluation set is answered through kernel column
/// `policy.sample(i)`. Inference groups queries by sampled kernel and
/// runs one batched [`QPlan`] pass per group, so the moving target
/// costs one extra pass per *distinct* kernel, not per query.
#[derive(Debug)]
pub struct EnsembleModel<'a> {
    qm: &'a QuantModel,
    columns: &'a MulColumns,
    policy: KernelPolicy,
}

impl<'a> EnsembleModel<'a> {
    /// Pairs a quantized model with kernel columns and a sampling
    /// policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy's arity does not match the column count.
    pub fn new(qm: &'a QuantModel, columns: &'a MulColumns, policy: KernelPolicy) -> Self {
        assert_eq!(
            policy.len(),
            columns.len(),
            "kernel policy arity must match the ensemble's column count"
        );
        EnsembleModel {
            qm,
            columns,
            policy,
        }
    }

    /// The underlying quantized model.
    pub fn model(&self) -> &QuantModel {
        self.qm
    }

    /// The kernel columns the ensemble samples from.
    pub fn columns(&self) -> &MulColumns {
        self.columns
    }

    /// The sampling policy.
    pub fn policy(&self) -> &KernelPolicy {
        &self.policy
    }

    /// The kernel column index sampled for each of the first `n`
    /// queries — the disclosed moving-target schedule.
    pub fn sampled_kernels(&self, n: usize) -> Vec<usize> {
        (0..n).map(|i| self.policy.sample(i as u64)).collect()
    }

    /// Predicted class per query: query `i` runs through kernel
    /// `policy.sample(i)`. Queries are grouped by sampled kernel and
    /// each group runs as one batched pass, in query-index order within
    /// the group.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or an image's shape disagrees with the first
    /// image's plan.
    pub fn predict_batch<'b, F>(&self, n: usize, image: F) -> Vec<usize>
    where
        F: Fn(usize) -> &'b Tensor + Sync,
    {
        assert!(n > 0, "ensemble prediction requires a non-empty batch");
        let samples = self.sampled_kernels(n);
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.columns.len()];
        for (i, &k) in samples.iter().enumerate() {
            groups[k].push(i);
        }
        let plan = QPlan::compile(self.qm, image(0).dims());
        let mut out = vec![0usize; n];
        for (k, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let lut: &MulLut = self.columns.payload(k);
            let rows = plan.predict_batch_indexed(group.len(), |j| image(group[j]), &[lut]);
            for (j, row) in rows.iter().enumerate() {
                out[group[j]] = row[0];
            }
        }
        out
    }

    /// Ensemble accuracy on a labelled `(image, label)` set; query `i`
    /// is the set's `i`-th entry. Empty sets score `0.0`.
    pub fn accuracy_on(&self, set: &[(Tensor, usize)]) -> f32 {
        if set.is_empty() {
            return 0.0;
        }
        let preds = self.predict_batch(set.len(), |i| &set[i].0);
        let correct = preds
            .iter()
            .zip(set.iter())
            .filter(|(p, (_, y))| *p == y)
            .count();
        correct as f32 / set.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_policy_samples_are_deterministic_and_in_range() {
        let p = KernelPolicy::uniform(3, 42);
        let a: Vec<usize> = (0..64).map(|q| p.sample(q)).collect();
        let b: Vec<usize> = (0..64).map(|q| p.sample(q)).collect();
        assert_eq!(a, b, "sampling must be a pure function of (seed, query)");
        assert!(a.iter().all(|&k| k < 3));
        // All three kernels appear over a modest window.
        for k in 0..3 {
            assert!(a.contains(&k), "kernel {k} never sampled in 64 draws");
        }
    }

    #[test]
    fn zero_weight_columns_are_never_sampled() {
        let p = KernelPolicy::weighted(vec![1.0, 0.0, 2.0], 7);
        assert!((0..512).all(|q| p.sample(q) != 1));
    }

    #[test]
    fn probabilities_normalize() {
        let p = KernelPolicy::weighted(vec![1.0, 3.0], 0);
        assert!((p.probability(0) - 0.25).abs() < 1e-6);
        assert!((p.probability(1) - 0.75).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn empty_uniform_policy_panics() {
        let _ = KernelPolicy::uniform(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn empty_weighted_policy_panics() {
        let _ = KernelPolicy::weighted(Vec::new(), 1);
    }

    #[test]
    #[should_panic(expected = "positive total probability mass")]
    fn zero_mass_policy_panics() {
        let _ = KernelPolicy::weighted(vec![0.0, 0.0], 1);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_panics() {
        let _ = KernelPolicy::weighted(vec![1.0, -0.5], 1);
    }
}
