//! A miniature Fig 4: LeNet-5 robustness heatmap across all nine
//! multiplier columns under BIM (both norms).
//!
//! Trains a LeNet-5 on synthetic MNIST (about a minute), quantizes it,
//! and sweeps a reduced epsilon grid. Compare the output's shape with the
//! paper's Fig 4: the linf panel collapses by eps 0.25-0.5 while the l2
//! panel decays slowly, and higher-error columns sit strictly below M1.
//!
//! Run: `cargo run --release --example adversarial_heatmap`

use axdnn::attack::suite::AttackId;
use axdnn::data::mnist::{MnistConfig, SynthMnist};
use axdnn::mul::Registry;
use axdnn::nn::train::{fit, TrainConfig};
use axdnn::nn::zoo;
use axdnn::quant::Placement;
use axdnn::robust::eval::{robustness_grid, EvalOpts};
use axdnn::robust::experiments::{mnist_mult_columns, quantize_victim};
use axdnn::util::rng::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = SynthMnist::generate(&MnistConfig {
        n: 1500,
        seed: 11,
        ..Default::default()
    });
    let test = SynthMnist::generate(&MnistConfig {
        n: 200,
        seed: 12,
        ..Default::default()
    });

    let mut lenet = zoo::lenet5(&mut Rng::seed_from_u64(3));
    println!("training LeNet-5 ({} params)...", lenet.num_params());
    fit(
        &mut lenet,
        &train,
        &TrainConfig {
            epochs: 2,
            verbose: true,
            ..Default::default()
        },
    );

    let victim = quantize_victim(&lenet, &train, Placement::ConvOnly)?;
    let mults = mnist_mult_columns(&Registry::standard());
    let opts = EvalOpts {
        eps_grid: vec![0.0, 0.1, 0.25, 0.5, 1.0],
        n_examples: 60,
        seed: 5,
    };

    for attack in [AttackId::BimLinf, AttackId::BimL2] {
        let grid = robustness_grid(&lenet, &victim, &mults, attack, &test, &opts);
        println!("\n{}", grid.to_text());
    }
    println!("(columns M1..M9 = 1JFF, 96D, 12N4, 17KS, 1AGV, FTA, JQQ, L40, JV3)");
    Ok(())
}
