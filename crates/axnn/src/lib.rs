//! A from-scratch neural-network library (the TensorFlow substitution).
//!
//! Float (f32) training and inference for the LeNet-scale networks of the
//! paper, with everything the robustness pipeline needs:
//!
//! * [`layer`] — convolution, dense, average-pooling, ReLU and flatten
//!   layers with forward *and* backward passes (parameter gradients and
//!   input gradients — the latter power the gradient-based attacks).
//! * [`plan`] / [`exec`] — the compiled float engine: an
//!   [`plan::FPlan`] resolves layer geometry once per `(model, input
//!   shape)` pair and replays im2col-GEMM kernels over reusable scratch,
//!   with batched input-gradient entry points that the batched attack
//!   crafting in `axattack` builds on. [`model::Sequential`]'s
//!   `forward`/`input_gradient`/`loss_and_grads` are thin bit-compatible
//!   wrappers over it.
//! * [`loss`] — numerically stable softmax cross-entropy.
//! * [`model`] — [`model::Sequential`] composition, prediction
//!   and accuracy evaluation.
//! * [`init`] / [`optim`] / [`train`] — He initialization, SGD with
//!   momentum and a deterministic mini-batch training loop riding the
//!   batched engine: every minibatch runs through
//!   [`plan::FPlan::loss_and_param_grads_batch`] (one plan, one training
//!   scratch per thread chunk), with per-example gradients reduced in a
//!   fixed order so trained weights are bit-identical for any
//!   `AXDNN_THREADS` setting.
//! * [`zoo`] — the paper's architectures: LeNet-5, a 5-conv/3-pool/2-FC
//!   AlexNet-mini, and the motivational-study FFNN.
//! * [`serialize`] — explicit binary weight artifacts (see
//!   `axutil::binio`) so trained models are cached and experiments are
//!   replayable.
//!
//! # Examples
//!
//! ```
//! use axnn::model::Sequential;
//! use axnn::layer::{Dense, Layer};
//! use axtensor::Tensor;
//! use axutil::rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(0);
//! let model = Sequential::new("tiny", vec![
//!     Layer::Dense(Dense::new(4, 3, &mut rng)),
//!     Layer::Relu,
//!     Layer::Dense(Dense::new(3, 2, &mut rng)),
//! ]);
//! let logits = model.forward(&Tensor::from_vec(vec![1.0, 0.0, -1.0, 0.5], &[4]));
//! assert_eq!(logits.len(), 2);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod exec;
pub mod init;
pub mod layer;
pub mod loss;
pub mod model;
pub mod optim;
pub mod plan;
pub mod serialize;
pub mod train;
pub mod universal;
pub mod zoo;

pub use layer::Layer;
pub use model::Sequential;
pub use plan::{BackwardTables, FPlan, FScratch};
