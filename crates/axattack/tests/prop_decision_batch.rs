//! Property tests pinning batched *decision*-attack crafting to the
//! per-image path.
//!
//! The PR-3 parity suite (`prop_craft_batch`) covers the gradient
//! attacks, which override `Attack::craft_batch`; the decision attacks
//! (Contrast Reduction, Repeated Additive Gaussian/Uniform) ride the
//! default per-image implementation. That default must obey the same
//! contract: image `i` crafted under `rng.derive(i)`, bit-exact with the
//! scalar `craft` call, for any model, eps and thread chunking — RAG/RAU
//! consume a *variable* number of rng draws per image (they stop at the
//! first fooling sample), which is exactly the case per-image streams
//! exist for.
//!
//! Chunking is controlled through the `AXDNN_THREADS` environment
//! variable, so the sweep test serializes on [`ENV_LOCK`].

use std::sync::Mutex;

use axattack::decision::{ContrastReduction, RepeatedAdditiveGaussian, RepeatedAdditiveUniform};
use axattack::norms::Norm;
use axattack::Attack;
use axnn::layer::{AvgPool2d, Conv2d, Dense, Layer};
use axnn::model::Sequential;
use axtensor::Tensor;
use axutil::rng::Rng;
use proptest::prelude::*;

/// Serializes tests that read or write `AXDNN_THREADS`.
static ENV_LOCK: Mutex<()> = Mutex::new(());

const IN_DIMS: [usize; 3] = [1, 8, 8];

/// A small random model: dense-only, plain conv, or conv+pool.
fn small_model(arch: usize, seed: u64) -> Sequential {
    let rng = &mut Rng::seed_from_u64(seed);
    match arch % 3 {
        0 => Sequential::new(
            "d-ffnn",
            vec![
                Layer::Flatten,
                Layer::Dense(Dense::new(64, 12, rng)),
                Layer::Relu,
                Layer::Dense(Dense::new(12, 4, rng)),
            ],
        ),
        1 => Sequential::new(
            "d-conv",
            vec![
                Layer::Conv2d(Conv2d::new(1, 3, 3, 1, 0, rng)),
                Layer::Relu,
                Layer::Flatten,
                Layer::Dense(Dense::new(3 * 6 * 6, 4, rng)),
            ],
        ),
        _ => Sequential::new(
            "d-convpool",
            vec![
                Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, rng)),
                Layer::Relu,
                Layer::AvgPool(AvgPool2d::new(2)),
                Layer::Flatten,
                Layer::Dense(Dense::new(2 * 4 * 4, 4, rng)),
            ],
        ),
    }
}

fn images(n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut t = Tensor::zeros(&IN_DIMS);
            rng.fill_range_f32(t.data_mut(), 0.1, 0.9);
            t
        })
        .collect()
}

/// The three decision attacks over their Table-I norm combinations, with
/// few repeats to keep the property cheap (repeats > 1 still exercises
/// the variable-draw-count stream behaviour).
fn decision_attacks() -> Vec<Box<dyn Attack>> {
    vec![
        Box::new(ContrastReduction::new()),
        Box::new(RepeatedAdditiveGaussian::new().with_repeats(3)),
        Box::new(RepeatedAdditiveUniform::new(Norm::L2).with_repeats(3)),
        Box::new(RepeatedAdditiveUniform::new(Norm::Linf).with_repeats(3)),
    ]
}

/// Compares one attack's batch output with the per-image scalar path.
fn check_attack(
    attack: &dyn Attack,
    model: &Sequential,
    imgs: &[Tensor],
    labels: &[usize],
    eps: f32,
    base: &Rng,
) -> Result<(), String> {
    let batch = attack.craft_batch(model, imgs, labels, eps, base);
    for (i, (img, &lbl)) in imgs.iter().zip(labels).enumerate() {
        let scalar = attack.craft(model, img, lbl, eps, &mut base.derive(i as u64));
        if batch[i] != scalar {
            return Err(format!(
                "{} eps {eps}: batch image {i} != scalar craft",
                attack.name()
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn decision_craft_batch_is_bit_exact_with_scalar_crafting(
        seed in proptest::strategy::any::<u64>(),
        arch in 0usize..3,
        eps_step in 1u32..=8,
    ) {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let model = small_model(arch, seed);
        let imgs = images(5, seed ^ 0xDEC1);
        // Label each image with its own prediction so RAG/RAU actually
        // search (a wrong label makes the first draw "fool" trivially).
        let labels: Vec<usize> = imgs.iter().map(|x| model.predict(x)).collect();
        let eps = eps_step as f32 * 0.1;
        let base = Rng::seed_from_u64(seed ^ 0xBA5E);
        for attack in decision_attacks() {
            if let Err(msg) = check_attack(attack.as_ref(), &model, &imgs, &labels, eps, &base) {
                prop_assert!(false, "{msg} (arch {arch}, seed {seed})");
            }
        }
    }
}

/// Decision-attack batches must not depend on how the batch is chunked
/// across worker threads, even though RAG/RAU consume different numbers
/// of rng draws per image.
#[test]
fn decision_craft_batch_is_chunking_invariant() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::env::var("AXDNN_THREADS").ok();
    let model = small_model(1, 1717);
    let imgs = images(7, 18);
    let labels: Vec<usize> = imgs.iter().map(|x| model.predict(x)).collect();
    let base = Rng::seed_from_u64(19);
    for attack in decision_attacks() {
        let mut reference: Option<Vec<Tensor>> = None;
        for threads in ["1", "2", "3", "7"] {
            std::env::set_var("AXDNN_THREADS", threads);
            let batch = attack.craft_batch(&model, &imgs, &labels, 0.4, &base);
            match &reference {
                None => reference = Some(batch),
                Some(r) => assert_eq!(
                    r,
                    &batch,
                    "{} diverges between chunkings (threads {threads})",
                    attack.name()
                ),
            }
        }
        // The single-threaded run equals the scalar path, so by the
        // equality above every chunking does.
        std::env::set_var("AXDNN_THREADS", "1");
        check_attack(attack.as_ref(), &model, &imgs, &labels, 0.4, &base)
            .unwrap_or_else(|msg| panic!("{msg}"));
    }
    match prev {
        Some(v) => std::env::set_var("AXDNN_THREADS", v),
        None => std::env::remove_var("AXDNN_THREADS"),
    }
}
