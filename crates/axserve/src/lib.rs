//! `axserve` — fault-tolerant batched inference serving over the
//! compiled quantized engines.
//!
//! The crate turns the offline
//! [`QPlan`](axquant::QPlan)/[`QScratch`](axquant::QScratch) engine into
//! an online service built on `std::thread` + `std::sync::mpsc` only: a
//! [`Server`] owns a worker pool and a dynamic micro-batcher that
//! coalesces concurrent [`predict`](Server::predict) calls into single
//! batched passes over a shared plan/scratch [`PlanPool`].
//!
//! Robustness is the first-class concern, mirroring the paper's framing
//! of approximation as a *defense that must not collapse under attack*:
//! a serving layer is only as defensive as its worst failure mode.
//!
//! | Failure mode | Mechanism | Surfaced as |
//! |---|---|---|
//! | Latency budget exceeded | [`Deadline`](axutil::time::Deadline) gates at admission, batch formation and execution | [`ServeError::DeadlineExceeded`] |
//! | Overload | Bounded admission queue, capped pending set, bounded worker channel | [`ServeError::Overloaded`] with retry-after hint |
//! | Sustained overload | Optional [`DegradePolicy`]: reroute LUT traffic to the exact kernel for a hold period | [`Response::degraded`] + kernel name |
//! | Predictable numerics under attack | Moving-target ensembles ([`ServerBuilder::ensemble`](server::ServerBuilder::ensemble)): per-query kernel draw from a [`KernelPolicy`](axquant::KernelPolicy) | [`Response::sampled`] + kernel name |
//! | Request panics a worker | `catch_unwind` + batch bisection + bounded backoff retries | [`ServeError::Poisoned`]; batch-mates still answered |
//! | Unknown model / kernel | Name resolution at admission | [`ServeError::UnknownModel`] / [`ServeError::UnknownKernel`] |
//!
//! Observability comes from [`Server::stats`] returning a
//! [`ServerStats`] snapshot (queue depth, in-flight, shed/panic/retry
//! counters, per-kernel batch sizes).
//!
//! **Determinism contract:** completed responses are bit-identical to an
//! offline [`forward_batch_with`](axquant::QPlan::forward_batch_with)
//! pass with the answering kernel, for any worker count, coalescing or
//! flush timing (pinned by `tests/prop_serve.rs`).
//!
//! ```
//! use axserve::{Request, Server, ServerConfig};
//! # use axnn::zoo; use axquant::{Placement, QuantModel};
//! # use axtensor::Tensor; use axutil::rng::Rng;
//! # let model = zoo::ffnn(&mut Rng::seed_from_u64(1));
//! # let mut img = Tensor::zeros(&[1, 28, 28]);
//! # Rng::seed_from_u64(2).fill_range_f32(img.data_mut(), 0.0, 1.0);
//! # let qm = QuantModel::from_float(&model, std::slice::from_ref(&img), Placement::All).unwrap();
//! let server = Server::builder()
//!     .model("lenet", qm)
//!     .serve(ServerConfig::default());
//! let response = server.predict(Request::new("lenet", "exact", img)).unwrap();
//! assert_eq!(response.class, response.logits.argmax());
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

mod batcher;
pub mod error;
pub mod pool;
pub mod request;
pub mod server;
pub mod stats;

pub use error::ServeError;
pub use pool::{ModelId, PlanPool};
pub use request::{FaultHook, Request, Response};
pub use server::{DegradePolicy, ResponseHandle, Server, ServerBuilder, ServerConfig};
pub use stats::{KernelBatchStats, ServerStats};
