//! Per-attack crafting cost on the FFNN (one image), covering the
//! single-step, iterated and decision-based families, plus the
//! scalar-vs-batched crafting comparison on a LeNet-5-sized model.

use axattack::gradient::{Bim, Fgm, Pgd};
use axattack::suite::AttackId;
use axattack::{Attack, Norm};
use axnn::zoo;
use axtensor::Tensor;
use axutil::rng::Rng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_attacks(c: &mut Criterion) {
    let model = zoo::ffnn(&mut Rng::seed_from_u64(1));
    let mut img = Tensor::zeros(&[1, 28, 28]);
    Rng::seed_from_u64(2).fill_range_f32(img.data_mut(), 0.0, 1.0);
    let mut group = c.benchmark_group("attack_craft");
    for id in [
        AttackId::FgmLinf,
        AttackId::BimLinf,
        AttackId::PgdLinf,
        AttackId::CrL2,
        AttackId::RagL2,
        AttackId::RauLinf,
    ] {
        let attack = id.build();
        group.bench_function(id.name(), |b| {
            b.iter(|| {
                attack.craft(
                    black_box(&model),
                    black_box(&img),
                    3,
                    0.1,
                    &mut Rng::seed_from_u64(3),
                )
            })
        });
    }
    group.finish();
}

/// Scalar (per-image `craft`) vs batched (`craft_batch`) crafting of a
/// small set on LeNet-5 — the regression guard for the batched autodiff
/// engine. Few iteration steps keep criterion's calibration fast; the
/// `bench_report` binary measures the full paper-default configuration.
fn bench_batched_crafting(c: &mut Criterion) {
    let model = zoo::lenet5(&mut Rng::seed_from_u64(4));
    let mut rng = Rng::seed_from_u64(5);
    let images: Vec<Tensor> = (0..4)
        .map(|_| {
            let mut t = Tensor::zeros(&[1, 28, 28]);
            rng.fill_range_f32(t.data_mut(), 0.0, 1.0);
            t
        })
        .collect();
    let labels = vec![3usize, 1, 4, 1];
    let base = Rng::seed_from_u64(6);
    let attacks: Vec<(&str, Box<dyn Attack>)> = vec![
        ("fgm", Box::new(Fgm::new(Norm::Linf))),
        ("bim", Box::new(Bim::new(Norm::Linf).with_steps(2))),
        ("pgd", Box::new(Pgd::new(Norm::L2).with_steps(2))),
    ];
    let mut group = c.benchmark_group("attack_craft_batch");
    for (tag, attack) in &attacks {
        group.bench_function(format!("{tag}_scalar_set"), |b| {
            b.iter(|| {
                images
                    .iter()
                    .zip(&labels)
                    .enumerate()
                    .map(|(i, (img, &lbl))| {
                        attack.craft(
                            black_box(&model),
                            black_box(img),
                            lbl,
                            0.1,
                            &mut base.derive(i as u64),
                        )
                    })
                    .collect::<Vec<_>>()
            })
        });
        group.bench_function(format!("{tag}_batched_set"), |b| {
            b.iter(|| {
                attack.craft_batch(black_box(&model), black_box(&images), &labels, 0.1, &base)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attacks, bench_batched_crafting);
criterion_main!(benches);
