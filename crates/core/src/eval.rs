//! The robustness-evaluation engine (Fig 3, steps 3-6).
//!
//! For every perturbation budget, adversarial examples are crafted once on
//! the accurate float model (Algorithm 1 line 6 — the adversary never sees
//! the approximate inference engine) and every quantized victim — accurate
//! and approximate — is evaluated on the *same* examples. Robustness is
//! the fraction of examples that remain correctly classified (line 15).

use axattack::suite::AttackId;
use axdata::Dataset;
use axmul::MulLut;
use axnn::Sequential;
use axquant::QuantModel;
use axtensor::Tensor;
use axutil::{parallel, rng::Rng};

use crate::grid::RobustnessGrid;

/// Sampling options for one evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOpts {
    /// The perturbation budgets to sweep.
    pub eps_grid: Vec<f32>,
    /// Number of test examples (capped at the dataset size).
    pub n_examples: usize,
    /// Attack randomness seed.
    pub seed: u64,
}

impl EvalOpts {
    /// The paper's epsilon grid with the given sample count.
    pub fn paper(n_examples: usize, seed: u64) -> Self {
        EvalOpts {
            eps_grid: paper_eps_grid(),
            n_examples,
            seed,
        }
    }
}

/// The perturbation budgets used throughout the paper's figures.
pub fn paper_eps_grid() -> Vec<f32> {
    vec![0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.5, 1.0, 1.5, 2.0]
}

/// Crafts the adversarial test set for one `(attack, eps)` cell, in
/// parallel over images. Deterministic given `seed`.
pub fn craft_adversarial_set(
    source: &Sequential,
    attack_id: AttackId,
    data: &Dataset,
    eps: f32,
    n: usize,
    seed: u64,
) -> Vec<(Tensor, usize)> {
    let attack = attack_id.build();
    let n = n.min(data.len());
    parallel::par_map(n, |i| {
        let mut rng = Rng::seed_from_u64(seed).derive(i as u64 ^ (eps.to_bits() as u64) << 20);
        (
            attack.craft(source, data.image(i), data.label(i), eps, &mut rng),
            data.label(i),
        )
    })
}

/// Accuracy of one victim/kernel pair on a crafted adversarial set.
pub fn adversarial_accuracy(victim: &QuantModel, kernel: &MulLut, advs: &[(Tensor, usize)]) -> f32 {
    if advs.is_empty() {
        return 0.0;
    }
    let correct = parallel::par_reduce(
        advs.len(),
        || 0usize,
        |acc, i| {
            let (x, y) = &advs[i];
            acc + usize::from(victim.predict_with(x, kernel) == *y)
        },
        |a, b| a + b,
    );
    correct as f32 / advs.len() as f32
}

/// Runs the full grid for one attack: every epsilon × every multiplier.
///
/// `mults` pairs display names with inference LUTs; by paper convention
/// the first entry is the accurate part (M1).
pub fn robustness_grid(
    source: &Sequential,
    victim: &QuantModel,
    mults: &[(String, MulLut)],
    attack_id: AttackId,
    data: &Dataset,
    opts: &EvalOpts,
) -> RobustnessGrid {
    assert!(!mults.is_empty(), "need at least one multiplier column");
    let mut acc = Vec::with_capacity(opts.eps_grid.len());
    for &eps in &opts.eps_grid {
        let advs = craft_adversarial_set(source, attack_id, data, eps, opts.n_examples, opts.seed);
        let row: Vec<f32> = mults
            .iter()
            .map(|(_, lut)| adversarial_accuracy(victim, lut, &advs))
            .collect();
        acc.push(row);
    }
    RobustnessGrid::new(
        attack_id.name(),
        data.name(),
        opts.eps_grid.clone(),
        mults.iter().map(|(n, _)| n.clone()).collect(),
        acc,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use axdata::mnist::{MnistConfig, SynthMnist};
    use axmul::Registry;
    use axnn::train::{fit, TrainConfig};
    use axnn::zoo;
    use axquant::Placement;
    use axutil::rng::Rng;

    /// A quickly trained FFNN plus quantized twin and a small test set.
    fn quick_setup() -> (Sequential, QuantModel, Dataset) {
        let train = SynthMnist::generate(&MnistConfig {
            n: 400,
            seed: 21,
            ..Default::default()
        });
        let test = SynthMnist::generate(&MnistConfig {
            n: 60,
            seed: 22,
            ..Default::default()
        });
        let mut model = zoo::ffnn(&mut Rng::seed_from_u64(3));
        fit(
            &mut model,
            &train,
            &TrainConfig {
                epochs: 2,
                lr: 0.1,
                ..Default::default()
            },
        );
        let calib: Vec<Tensor> = (0..16).map(|i| train.image(i).clone()).collect();
        let q = QuantModel::from_float(&model, &calib, Placement::All).unwrap();
        (model, q, test)
    }

    #[test]
    fn grid_shape_and_eps0_is_clean_accuracy() {
        let (model, q, test) = quick_setup();
        let reg = Registry::standard();
        let mults = vec![
            ("1JFF".to_string(), reg.build_lut("1JFF").unwrap()),
            ("L40".to_string(), reg.build_lut("L40").unwrap()),
        ];
        let opts = EvalOpts {
            eps_grid: vec![0.0, 0.2],
            n_examples: 40,
            seed: 5,
        };
        let grid = robustness_grid(&model, &q, &mults, AttackId::PgdLinf, &test, &opts);
        assert_eq!(grid.eps().len(), 2);
        assert_eq!(grid.mults().len(), 2);
        // eps = 0: the "attack" is the identity, so the first row must be
        // the victims' clean accuracy.
        let clean_exact = q.accuracy_with(&test, &mults[0].1, 40);
        assert!((grid.accuracy(0, 0) - clean_exact).abs() < 1e-6);
        // A strong linf attack must strictly reduce accuracy of the
        // accurate column (the model is trained, clean acc is high).
        assert!(
            grid.accuracy(0, 0) > 0.5,
            "training failed? {}",
            grid.accuracy(0, 0)
        );
        assert!(grid.accuracy(1, 0) < grid.accuracy(0, 0));
    }

    #[test]
    fn crafting_is_deterministic() {
        let (model, _, test) = quick_setup();
        let a = craft_adversarial_set(&model, AttackId::PgdLinf, &test, 0.1, 10, 9);
        let b = craft_adversarial_set(&model, AttackId::PgdLinf, &test, 0.1, 10, 9);
        assert_eq!(a, b);
        let c = craft_adversarial_set(&model, AttackId::PgdLinf, &test, 0.1, 10, 10);
        assert_ne!(a, c, "different seeds should perturb differently");
    }

    #[test]
    fn paper_grid_matches_figures() {
        let g = paper_eps_grid();
        assert_eq!(g.len(), 10);
        assert_eq!(g[0], 0.0);
        assert_eq!(*g.last().unwrap(), 2.0);
    }

    #[test]
    fn adversarial_accuracy_empty_is_zero() {
        let (_, q, _) = quick_setup();
        let lut = Registry::standard().build_lut("1JFF").unwrap();
        assert_eq!(adversarial_accuracy(&q, &lut, &[]), 0.0);
    }
}
