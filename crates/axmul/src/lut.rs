//! Lookup-table multipliers.
//!
//! An 8x8 multiplier has only 2^16 input combinations, so any gate-level
//! multiplier can be flattened into a 64Ki x u16 table (128 KiB — L1/L2
//! resident). During inference this turns every MAC into one table read,
//! which is also exactly how TFApprox applies EvoApprox multipliers on
//! GPUs.

use axcirc::Netlist;

use crate::kernel::MulKernel;

/// Swaps the operand order of a 64Ki multiplier table: entry
/// `(a << 8) | b` of the result is entry `(b << 8) | a` of `src`.
///
/// This is the one re-indexing primitive between the `(a, b)` layout used
/// by [`MulLut`] and the `(b, a)` layout produced by
/// [`Netlist::exhaustive_u16`] and consumed by
/// [`axcirc::ErrorMetrics::from_mul_table`]. It is an involution:
/// transposing twice returns the original table.
///
/// # Panics
///
/// Panics if `src` does not have exactly `2^16` entries.
pub fn transpose_table(src: &[u16]) -> Vec<u16> {
    assert_eq!(src.len(), 1 << 16, "expected a 64Ki 8x8 multiplier table");
    let mut out = vec![0u16; 1 << 16];
    for a in 0..=255usize {
        for b in 0..=255usize {
            out[(a << 8) | b] = src[(b << 8) | a];
        }
    }
    out
}

/// A 64Ki-entry unsigned 8x8 multiplier table, indexed by `(a << 8) | b`.
#[derive(Clone, PartialEq, Eq)]
pub struct MulLut {
    name: String,
    table: Box<[u16]>,
}

impl std::fmt::Debug for MulLut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MulLut")
            .field("name", &self.name)
            .field("entries", &self.table.len())
            .finish()
    }
}

impl MulLut {
    /// Builds a table from a function of the two operands.
    pub fn from_fn(name: impl Into<String>, f: impl Fn(u8, u8) -> u16) -> Self {
        let mut table = vec![0u16; 1 << 16].into_boxed_slice();
        for a in 0..=255u16 {
            for b in 0..=255u16 {
                table[((a << 8) | b) as usize] = f(a as u8, b as u8);
            }
        }
        MulLut {
            name: name.into(),
            table,
        }
    }

    /// Flattens a 16-input / 16-output multiplier netlist (operand `a` on
    /// inputs 0..8 little-endian, `b` on inputs 8..16) into a table.
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not have 16 inputs.
    pub fn from_netlist(name: impl Into<String>, nl: &Netlist) -> Self {
        assert_eq!(nl.num_inputs(), 16, "expected an 8x8 multiplier netlist");
        // The netlist is indexed by (b << 8) | a; re-index to (a << 8) | b.
        let table = transpose_table(&nl.exhaustive_u16()).into_boxed_slice();
        MulLut {
            name: name.into(),
            table,
        }
    }

    /// The exact multiplier as a table (useful to benchmark LUT overhead).
    pub fn exact() -> Self {
        MulLut::from_fn("exact-lut", |a, b| a as u16 * b as u16)
    }

    /// The raw table, indexed by `(a << 8) | b`.
    pub fn table(&self) -> &[u16] {
        &self.table
    }

    /// Re-indexes into the `(b << 8) | a` layout used by
    /// [`axcirc::ErrorMetrics::from_mul_table`].
    pub fn to_ba_table(&self) -> Vec<u16> {
        transpose_table(&self.table)
    }
}

impl MulKernel for MulLut {
    #[inline]
    fn mul(&self, a: u8, b: u8) -> u16 {
        // Index is always < 2^16 and the table has exactly 2^16 entries.
        unsafe { *self.table.get_unchecked(((a as usize) << 8) | b as usize) }
    }

    fn name(&self) -> &str {
        &self.name
    }

    #[inline]
    fn lut_table(&self) -> Option<&[u16]> {
        Some(&self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axcirc::{ApproxSpec, ArrayMultiplier};

    #[test]
    fn exact_lut_matches_builtin() {
        let lut = MulLut::exact();
        for a in (0..=255u8).step_by(3) {
            for b in (0..=255u8).step_by(7) {
                assert_eq!(lut.mul(a, b), a as u16 * b as u16);
            }
        }
    }

    #[test]
    fn from_netlist_matches_netlist_everywhere() {
        let nl = ArrayMultiplier::new(8, ApproxSpec::exact().with_loa_cols(6)).build();
        let lut = MulLut::from_netlist("loa6", &nl);
        let raw = nl.exhaustive_u16();
        for a in 0..=255usize {
            for b in 0..=255usize {
                assert_eq!(lut.mul(a as u8, b as u8), raw[(b << 8) | a]);
            }
        }
    }

    #[test]
    fn ba_table_roundtrip_is_consistent() {
        let lut = MulLut::from_fn("t", |a, b| (a as u16).wrapping_mul(b as u16) ^ 1);
        let ba = lut.to_ba_table();
        for a in (0..=255usize).step_by(5) {
            for b in (0..=255usize).step_by(11) {
                assert_eq!(ba[(b << 8) | a], lut.mul(a as u8, b as u8));
            }
        }
    }

    #[test]
    fn transpose_table_is_involutive_and_swaps_operands() {
        let lut = MulLut::from_fn("asym", |a, b| (a as u16) << 2 | (b as u16 & 3));
        let t = transpose_table(lut.table());
        for a in (0..=255usize).step_by(13) {
            for b in (0..=255usize).step_by(17) {
                assert_eq!(t[(a << 8) | b], lut.mul(b as u8, a as u8));
            }
        }
        assert_eq!(transpose_table(&t), lut.table());
    }

    #[test]
    #[should_panic(expected = "64Ki")]
    fn transpose_table_rejects_short_tables() {
        let _ = transpose_table(&[0u16; 16]);
    }

    #[test]
    fn lut_classifies_as_table_backend() {
        use crate::kernel::MulBackend;
        let lut = MulLut::exact();
        let be = MulBackend::of(&lut);
        assert!(matches!(be, MulBackend::Table(_)));
        assert_eq!(be.mul(251, 13), 251 * 13);
    }

    #[test]
    fn debug_shows_name_not_table() {
        let lut = MulLut::exact();
        let dbg = format!("{lut:?}");
        assert!(dbg.contains("exact-lut"));
        assert!(dbg.len() < 200, "must not dump 64Ki entries");
    }
}
