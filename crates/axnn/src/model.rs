//! Sequential model composition.

use axdata::Dataset;
use axtensor::Tensor;

use crate::layer::Layer;

/// Parameter gradients for a whole model: one `Vec<Tensor>` per layer,
/// each in the layer's `params()` order (empty for parameterless layers).
#[derive(Debug, Clone, PartialEq)]
pub struct GradBuffer {
    /// Per-layer parameter gradients.
    pub layers: Vec<Vec<Tensor>>,
}

impl GradBuffer {
    /// Accumulates another buffer into this one.
    ///
    /// # Panics
    ///
    /// Panics on layout mismatch.
    pub fn accumulate(&mut self, other: &GradBuffer) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "layer count mismatch"
        );
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            assert_eq!(a.len(), b.len());
            for (ta, tb) in a.iter_mut().zip(b) {
                ta.add_scaled(tb, 1.0);
            }
        }
    }

    /// Scales every gradient in place.
    pub fn scale(&mut self, s: f32) {
        for layer in &mut self.layers {
            for t in layer {
                t.map_inplace(|v| v * s);
            }
        }
    }

    /// Global l2 norm across all gradients (for diagnostics/clipping).
    pub fn l2_norm(&self) -> f32 {
        let mut sq = 0f64;
        for layer in &self.layers {
            for t in layer {
                let n = t.l2_norm() as f64;
                sq += n * n;
            }
        }
        sq.sqrt() as f32
    }
}

/// A feed-forward stack of layers producing class logits.
#[derive(Debug, Clone, PartialEq)]
pub struct Sequential {
    name: String,
    layers: Vec<Layer>,
}

impl Sequential {
    /// Assembles a model.
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Self {
        Sequential {
            name: name.into(),
            layers,
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layer stack (weight surgery, optimizers).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| l.params())
            .map(|p| p.len())
            .sum()
    }

    /// Runs the model forward, returning logits.
    ///
    /// Thin wrapper over the compiled engine ([`crate::plan::FPlan`]);
    /// bit-compatible with the seed layer-by-layer loop.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let plan = self.plan(x.dims());
        let mut scratch = plan.scratch();
        plan.forward(&mut scratch, x)
    }

    /// Forward pass that records every layer input (needed by backward).
    /// Returns `(per_layer_inputs, logits)`.
    pub fn forward_trace(&self, x: &Tensor) -> (Vec<Tensor>, Tensor) {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for layer in &self.layers {
            inputs.push(cur.clone());
            cur = layer.forward(&cur);
        }
        (inputs, cur)
    }

    /// The predicted class for one input.
    pub fn predict(&self, x: &Tensor) -> usize {
        self.forward(x).argmax()
    }

    /// Zero gradients shaped like this model's parameters.
    pub fn zero_grads(&self) -> GradBuffer {
        GradBuffer {
            layers: self.layers.iter().map(|l| l.zero_param_grads()).collect(),
        }
    }

    /// Cross-entropy loss and parameter gradients for one example.
    ///
    /// Thin wrapper over the compiled engine ([`crate::plan::FPlan`]);
    /// bit-compatible with the seed layer-by-layer loop.
    pub fn loss_and_grads(&self, x: &Tensor, target: usize) -> (f32, GradBuffer) {
        let plan = self.plan(x.dims());
        let mut scratch = plan.scratch();
        plan.loss_and_grads(&mut scratch, x, target)
    }

    /// Cross-entropy loss and the gradient with respect to the *input* —
    /// the quantity gradient-based adversarial attacks ascend.
    ///
    /// Thin wrapper over the compiled engine ([`crate::plan::FPlan`]);
    /// bit-compatible with the seed layer-by-layer loop.
    pub fn input_gradient(&self, x: &Tensor, target: usize) -> (f32, Tensor) {
        let plan = self.plan(x.dims());
        let mut scratch = plan.scratch();
        plan.input_gradient(&mut scratch, x, target)
    }

    /// Input gradients for a whole batch of examples in one pass, chunked
    /// over threads with one compiled plan and one scratch per chunk.
    ///
    /// Returns one gradient per image, in order, bit-identical to
    /// per-image [`Sequential::input_gradient`] calls regardless of how
    /// the batch is chunked.
    ///
    /// # Panics
    ///
    /// Panics if `images` and `labels` disagree in length or the images
    /// do not share one shape.
    pub fn input_gradient_batch(&self, images: &[Tensor], labels: &[usize]) -> Vec<Tensor> {
        self.loss_and_input_grads_batch(images, labels)
            .into_iter()
            .map(|(_, g)| g)
            .collect()
    }

    /// Like [`Sequential::input_gradient_batch`], but also returns each
    /// example's cross-entropy loss (used by loss-landscape sweeps and
    /// gradient-aggregating universal-perturbation workloads).
    pub fn loss_and_input_grads_batch(
        &self,
        images: &[Tensor],
        labels: &[usize],
    ) -> Vec<(f32, Tensor)> {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        if images.is_empty() {
            return Vec::new();
        }
        assert_uniform_shape(images);
        let plan = self.plan(images[0].dims());
        plan.input_gradient_batch_indexed(images.len(), |i| &images[i], |i| labels[i])
    }

    /// Summed cross-entropy loss and parameter gradients over a whole
    /// minibatch, on the batched engine: one compiled plan, threads work
    /// contiguous image chunks with one training scratch each, per-image
    /// gradients reduced in a fixed left-to-right image order. The sum is
    /// bit-identical to the per-image [`Sequential::loss_and_grads`] fold
    /// for any thread chunking (see
    /// [`crate::plan::FPlan::loss_and_param_grads_batch`]).
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, a length mismatch, or images that do not
    /// share one shape.
    pub fn loss_and_param_grads_batch(
        &self,
        images: &[Tensor],
        labels: &[usize],
    ) -> (f32, GradBuffer) {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        assert!(
            !images.is_empty(),
            "loss_and_param_grads_batch needs a non-empty batch"
        );
        assert_uniform_shape(images);
        let plan = self.plan(images[0].dims());
        plan.loss_and_param_grads_batch(images.len(), |i| &images[i], |i| labels[i])
    }

    /// Applies a gradient step: `param -= lr * grad` (plain SGD; momentum
    /// lives in [`crate::optim::Sgd`]).
    pub fn apply_grads(&mut self, grads: &GradBuffer, lr: f32) {
        for (layer, g) in self.layers.iter_mut().zip(&grads.layers) {
            for (p, gt) in layer.params_mut().into_iter().zip(g) {
                p.add_scaled(gt, -lr);
            }
        }
    }

    /// Classification accuracy over (up to `max_n` examples of) a dataset,
    /// evaluated on the batched plan engine: one compiled plan, threads
    /// work contiguous image chunks with one scratch each instead of
    /// paying a per-image `predict` (plan + scratch) setup.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample (empty dataset or `max_n == 0`) — an
    /// accuracy of "0.0" there would silently read as a model failure.
    pub fn accuracy(&self, data: &Dataset, max_n: usize) -> f32 {
        let n = data.len().min(max_n);
        assert!(
            n > 0,
            "accuracy needs a non-empty sample (dataset len {}, max_n {max_n})",
            data.len()
        );
        let plan = self.plan(data.image(0).dims());
        let correct = plan.count_correct(n, |i| data.image(i), |i| data.label(i));
        correct as f32 / n as f32
    }

    /// A one-line-per-layer summary with parameter counts.
    pub fn summary(&self) -> String {
        let mut out = format!("{} ({} params)\n", self.name, self.num_params());
        for (i, layer) in self.layers.iter().enumerate() {
            let p: usize = layer.params().iter().map(|t| t.len()).sum();
            out.push_str(&format!("  {i:2}: {:8} {:>8} params\n", layer.kind(), p));
        }
        out
    }
}

/// Asserts every image shares the first image's shape. The batch entry
/// points compile one plan from `images[0]` and the plan only checks
/// flattened lengths, so a same-length/different-shape image would
/// otherwise silently run under image 0's geometry instead of panicking
/// like the per-image path.
fn assert_uniform_shape(images: &[Tensor]) {
    let dims = images[0].dims();
    for (i, img) in images.iter().enumerate().skip(1) {
        assert_eq!(
            img.dims(),
            dims,
            "batch image {i} does not share the batch shape"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Dense;
    use axutil::rng::Rng;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = Rng::seed_from_u64(seed);
        Sequential::new(
            "tiny",
            vec![
                Layer::Dense(Dense::new(4, 8, &mut rng)),
                Layer::Relu,
                Layer::Dense(Dense::new(8, 3, &mut rng)),
            ],
        )
    }

    fn random_input(seed: u64) -> Tensor {
        let mut t = Tensor::zeros(&[4]);
        Rng::seed_from_u64(seed).fill_normal_f32(t.data_mut(), 1.0);
        t
    }

    #[test]
    fn forward_shapes_and_trace_agree() {
        let m = tiny_model(0);
        let x = random_input(1);
        let y = m.forward(&x);
        assert_eq!(y.len(), 3);
        let (inputs, y2) = m.forward_trace(&x);
        assert_eq!(inputs.len(), 3);
        assert_eq!(y, y2);
        assert_eq!(inputs[0], x);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let m = tiny_model(2);
        let x = random_input(3);
        let (_, dx) = m.input_gradient(&x, 1);
        let eps = 1e-3;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp = crate::loss::cross_entropy(&m.forward(&xp), 1);
            let lm = crate::loss::cross_entropy(&m.forward(&xm), 1);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 1e-2 * (1.0 + num.abs()),
                "dim {i}: {num} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn param_gradient_matches_finite_difference() {
        let m = tiny_model(4);
        let x = random_input(5);
        let (_, grads) = m.loss_and_grads(&x, 0);
        let eps = 1e-3;
        // Check a handful of weights in the first dense layer.
        for j in [0usize, 5, 13, 31] {
            let mut mp = m.clone();
            mp.layers[0].params_mut()[0].data_mut()[j] += eps;
            let mut mm = m.clone();
            mm.layers[0].params_mut()[0].data_mut()[j] -= eps;
            let lp = crate::loss::cross_entropy(&mp.forward(&x), 0);
            let lm = crate::loss::cross_entropy(&mm.forward(&x), 0);
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.layers[0][0].data()[j];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "{num} vs {ana}"
            );
        }
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        let mut m = tiny_model(6);
        let x = random_input(7);
        let (l0, g) = m.loss_and_grads(&x, 2);
        m.apply_grads(&g, 0.1);
        let (l1, _) = m.loss_and_grads(&x, 2);
        assert!(l1 < l0, "loss must drop: {l0} -> {l1}");
    }

    #[test]
    fn grad_buffer_accumulate_and_scale() {
        let m = tiny_model(8);
        let x = random_input(9);
        let (_, g1) = m.loss_and_grads(&x, 0);
        let mut acc = m.zero_grads();
        acc.accumulate(&g1);
        acc.accumulate(&g1);
        acc.scale(0.5);
        // acc should now equal g1.
        for (a, b) in acc.layers.iter().flatten().zip(g1.layers.iter().flatten()) {
            for (&va, &vb) in a.data().iter().zip(b.data()) {
                assert!((va - vb).abs() < 1e-6);
            }
        }
        assert!(acc.l2_norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "batch shape")]
    fn mixed_shape_batch_is_rejected() {
        let m = tiny_model(11);
        // Same flattened length, different shape: must panic instead of
        // silently running image 1 under image 0's geometry.
        let images = vec![Tensor::zeros(&[4]), Tensor::zeros(&[2, 2])];
        let _ = m.loss_and_param_grads_batch(&images, &[0, 1]);
    }

    #[test]
    fn num_params_counts_all() {
        let m = tiny_model(10);
        // dense(4->8): 32+8, dense(8->3): 24+3
        assert_eq!(m.num_params(), 32 + 8 + 24 + 3);
        assert!(m.summary().contains("dense"));
    }
}
