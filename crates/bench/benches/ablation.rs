//! Ablation benches for the design choices called out in DESIGN.md:
//! (a) approximation placement conv-only vs all layers;
//! (b) LUT-based MACs vs direct gate-level netlist evaluation;
//! (c) truncation vs LOA error structure at matched MAE.

use axcirc::{ApproxSpec, ArrayMultiplier};
use axmul::kernel::MulKernel;
use axmul::{MulLut, Registry};
use axnn::zoo;
use axquant::{Placement, QuantModel};
use axtensor::Tensor;
use axutil::rng::Rng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A kernel that evaluates the gate-level netlist on every MAC — what
/// inference would cost without LUT flattening.
struct NetlistKernel {
    nl: axcirc::Netlist,
}

impl MulKernel for NetlistKernel {
    fn mul(&self, a: u8, b: u8) -> u16 {
        self.nl.eval_bits(((b as u64) << 8) | a as u64) as u16
    }
    fn name(&self) -> &str {
        "netlist-direct"
    }
}

fn bench_placement(c: &mut Criterion) {
    let model = zoo::lenet5(&mut Rng::seed_from_u64(1));
    let mut img = Tensor::zeros(&[1, 28, 28]);
    Rng::seed_from_u64(2).fill_range_f32(img.data_mut(), 0.0, 1.0);
    let calib = vec![img.clone()];
    let conv_only = QuantModel::from_float(&model, &calib, Placement::ConvOnly).unwrap();
    let all = QuantModel::from_float(&model, &calib, Placement::All).unwrap();
    let approx = Registry::standard().build_lut("17KS").unwrap();
    let mut group = c.benchmark_group("placement");
    group.bench_function("conv_only", |b| {
        b.iter(|| conv_only.forward_with(black_box(&img), &approx))
    });
    group.bench_function("all_layers", |b| {
        b.iter(|| all.forward_with(black_box(&img), &approx))
    });
    group.finish();
}

fn bench_lut_vs_netlist(c: &mut Criterion) {
    let spec = ApproxSpec::exact().with_loa_cols(6);
    let nl = ArrayMultiplier::new(8, spec).build();
    let lut = MulLut::from_netlist("loa6", &nl);
    let direct = NetlistKernel { nl };
    let mut group = c.benchmark_group("mac_represent");
    group.bench_function("lut", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for a in 0..=63u8 {
                acc += lut.mul(black_box(a), black_box(a ^ 0x2A)) as u32;
            }
            acc
        })
    });
    group.bench_function("netlist_direct", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for a in 0..=63u8 {
                acc += direct.mul(black_box(a), black_box(a ^ 0x2A)) as u32;
            }
            acc
        })
    });
    group.finish();
}

fn bench_error_structure(c: &mut Criterion) {
    // Truncation vs LOA at comparable MAE: same victim, same image —
    // the latency is identical (both are LUTs); this bench documents
    // that the *cost* of either structure is the same even though their
    // robustness behaviour differs (see fig4/fig6 outputs).
    let model = zoo::lenet5(&mut Rng::seed_from_u64(3));
    let mut img = Tensor::zeros(&[1, 28, 28]);
    Rng::seed_from_u64(4).fill_range_f32(img.data_mut(), 0.0, 1.0);
    let q = QuantModel::from_float(&model, &[img.clone()], Placement::ConvOnly).unwrap();
    let trunc = MulLut::from_netlist(
        "trunc8c",
        &ArrayMultiplier::new(
            8,
            ApproxSpec::exact()
                .with_truncate_cols(8)
                .with_compensation(),
        )
        .build(),
    );
    let loa = MulLut::from_netlist(
        "loa8",
        &ArrayMultiplier::new(8, ApproxSpec::exact().with_loa_cols(8)).build(),
    );
    let mut group = c.benchmark_group("error_structure");
    group.bench_function("truncation_fta_like", |b| {
        b.iter(|| q.forward_with(black_box(&img), &trunc))
    });
    group.bench_function("loa_17ks_like", |b| {
        b.iter(|| q.forward_with(black_box(&img), &loa))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_placement,
    bench_lut_vs_netlist,
    bench_error_structure
);
criterion_main!(benches);
