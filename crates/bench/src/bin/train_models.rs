//! Pre-trains and caches every model the figure binaries need.
//! Run once per profile; later binaries load the cached weights.

fn main() {
    let store = bench::store_from_env();
    bench::timed("lenet5-mnist", || {
        store.lenet5_mnist().expect("train lenet5")
    });
    bench::timed("ffnn-mnist", || store.ffnn_mnist().expect("train ffnn"));
    bench::timed("alexnet-cifar", || {
        store.alexnet_cifar().expect("train alexnet")
    });
    bench::timed("lenet5-mnist32", || {
        store.lenet5_mnist32().expect("train lenet5-32")
    });
    bench::timed("alexnet-mnist32", || {
        store.alexnet_mnist32().expect("train alexnet-mnist")
    });
    bench::timed("lenet5-cifar", || {
        store.lenet5_cifar().expect("train lenet5-cifar")
    });
    let test = store.mnist_test();
    let lenet = store.lenet5_mnist().unwrap();
    println!(
        "lenet5 clean (float) accuracy: {:.1}%",
        100.0 * lenet.accuracy(test, 1000)
    );
    let alex = store.alexnet_cifar().unwrap();
    println!(
        "alexnet clean (float) accuracy: {:.1}%",
        100.0 * alex.accuracy(store.cifar_test(), 1000)
    );
}
