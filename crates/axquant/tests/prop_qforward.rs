//! Property tests pinning the batched plan engine to the per-image path.
//!
//! The batch API must be a pure performance optimization: for any model,
//! placement and quantization level, `forward_batch_with` over N images
//! and M kernels must be *bit-exact* with N×M independent
//! `forward_with` calls, and the exact LUT must be bit-exact with the
//! builtin exact multiplier through the GEMM path.

use axmul::{ExactMul, MulLut};
use axnn::layer::{AvgPool2d, Conv2d, Dense, Layer};
use axnn::model::Sequential;
use axquant::{Placement, QLevel, QuantModel};
use axtensor::Tensor;
use axutil::rng::Rng;
use proptest::prelude::*;

const IN_DIMS: [usize; 3] = [1, 6, 6];

/// A small random model of one of three shapes that together cover every
/// engine path: dense-only, conv without padding, conv+pad+avgpool.
fn small_model(arch: usize, seed: u64) -> Sequential {
    let rng = &mut Rng::seed_from_u64(seed);
    match arch % 3 {
        0 => Sequential::new(
            "p-ffnn",
            vec![
                Layer::Flatten,
                Layer::Dense(Dense::new(36, 8, rng)),
                Layer::Relu,
                Layer::Dense(Dense::new(8, 4, rng)),
            ],
        ),
        1 => Sequential::new(
            "p-conv",
            vec![
                Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 0, rng)),
                Layer::Relu,
                Layer::Flatten,
                Layer::Dense(Dense::new(2 * 4 * 4, 4, rng)),
            ],
        ),
        _ => Sequential::new(
            "p-convpool",
            vec![
                Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, rng)),
                Layer::Relu,
                Layer::AvgPool(AvgPool2d::new(2)),
                Layer::Flatten,
                Layer::Dense(Dense::new(2 * 3 * 3, 4, rng)),
            ],
        ),
    }
}

fn images(n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut t = Tensor::zeros(&IN_DIMS);
            rng.fill_range_f32(t.data_mut(), 0.0, 1.0);
            t
        })
        .collect()
}

/// An approximate kernel with structure the engine must not assume away:
/// asymmetric and biased, including `mul(w, 0) != 0`.
fn biased_lut() -> MulLut {
    MulLut::from_fn("biased", |a, b| {
        ((a as u16).wrapping_mul(b as u16) & !0x7).wrapping_add((a as u16) & 3)
    })
}

/// Checks batch-vs-scalar bit-exactness and exact-LUT == builtin for one
/// quantized model. Returns an error message on the first mismatch.
fn check_engine(qm: &QuantModel, probes: &[Tensor]) -> Result<(), String> {
    let exact_lut = MulLut::exact();
    let approx = biased_lut();
    let kernels = [&exact_lut, &approx];
    let plan = qm.plan(&IN_DIMS);
    let batch = plan.forward_batch_with(probes, &kernels);
    for (img, row) in probes.iter().zip(&batch) {
        let scalar_exact = qm.forward_with(img, &exact_lut);
        let scalar_approx = qm.forward_with(img, &approx);
        if row[0] != scalar_exact {
            return Err(format!(
                "batch exact-LUT lane != per-image forward_with for {}",
                qm.name()
            ));
        }
        if row[1] != scalar_approx {
            return Err(format!(
                "batch approx lane != per-image forward_with for {}",
                qm.name()
            ));
        }
        // The exact LUT must be indistinguishable from the builtin
        // multiply through the whole GEMM path.
        if scalar_exact != qm.forward_with(img, &ExactMul) {
            return Err(format!("exact LUT != ExactMul for {}", qm.name()));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn batch_engine_is_bit_exact_on_random_models(
        seed in proptest::strategy::any::<u64>(),
        arch in 0usize..3,
        wbits in 2u8..=8,
        abits in 2u8..=8,
    ) {
        let model = small_model(arch, seed);
        let calib = images(4, seed ^ 0xCA11B);
        let probes = images(3, seed ^ 0x9A0BE5);
        let level = QLevel::new(wbits, abits);
        for placement in [Placement::ConvOnly, Placement::All] {
            let qm = QuantModel::from_float_with_level(&model, &calib, placement, level)
                .expect("supported topology");
            if let Err(msg) = check_engine(&qm, &probes) {
                prop_assert!(false, "{msg} (placement {placement}, level {level})");
            }
        }
    }
}

/// The full `Placement` × `QLevel` lattice, deterministically: all 49
/// weight/activation bit-width pairs under both placements on the model
/// shape that exercises conv, padding, pooling and dense layers.
#[test]
fn batch_engine_is_bit_exact_on_every_placement_and_qlevel() {
    let model = small_model(2, 77);
    let calib = images(4, 78);
    let probes = images(2, 79);
    for wbits in 2..=8u8 {
        for abits in 2..=8u8 {
            let level = QLevel::new(wbits, abits);
            for placement in [Placement::ConvOnly, Placement::All] {
                let qm = QuantModel::from_float_with_level(&model, &calib, placement, level)
                    .expect("supported topology");
                if let Err(msg) = check_engine(&qm, &probes) {
                    panic!("{msg} (placement {placement}, level {level})");
                }
            }
        }
    }
}
