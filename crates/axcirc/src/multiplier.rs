//! Parameterized unsigned array-multiplier generator.
//!
//! The generator produces a `w x w` unsigned multiplier as a partial
//! product array reduced column-by-column with adder cells. Approximation
//! is introduced through four orthogonal knobs, which together span the
//! error structures of the EvoApprox8b parts the paper uses:
//!
//! 1. **Column truncation** (`truncate_cols`): partial products in the
//!    lowest columns are dropped outright — a strongly *negatively biased*
//!    approximation (the multiplier always underestimates), optionally
//!    softened by constant **compensation**.
//! 2. **Lower-part-OR columns** (`loa_cols`): low columns compress their
//!    partial products with OR gates and propagate no carries — small,
//!    input-dependent errors of both signs.
//! 3. **Approximate-cell columns** (`approx_cols` + `cell`): the reduction
//!    in low columns uses an approximate full-adder cell — zero-mean,
//!    data-dependent "masked/unmasked" errors, the behaviour the paper's
//!    §IV.B discussion attributes to approximate partial-product addition.
//! 4. **Row perforation** (`perforated_rows`): whole partial-product rows
//!    are dropped — coarse negative bias concentrated on one operand's bit.
//!
//! The three error families are deliberately distinct because the paper's
//! central observation — two multipliers with similar MAE can behave very
//! differently under attack — is a statement about error *structure*, not
//! error magnitude.

use crate::cells::{half_adder, ApproxCell};
use crate::netlist::{Netlist, NodeId};

/// Approximation knobs for [`ArrayMultiplier`].
///
/// # Examples
///
/// ```
/// use axcirc::multiplier::ApproxSpec;
///
/// let spec = ApproxSpec::exact().with_truncate_cols(6).with_compensation();
/// assert_eq!(spec.truncate_cols, 6);
/// assert!(spec.compensate);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ApproxSpec {
    /// Columns `[0, truncate_cols)` drop all partial products.
    pub truncate_cols: usize,
    /// When truncating, force output bit `truncate_cols - 1` to 1 to add
    /// back roughly half of the dropped mass.
    pub compensate: bool,
    /// Columns `[truncate_cols, loa_cols)` compress with OR, no carries.
    pub loa_cols: usize,
    /// Columns `[loa_cols.max(truncate_cols), approx_cols)` reduce with
    /// `cell` instead of the exact full adder.
    pub approx_cols: usize,
    /// The approximate cell used in the approximate-column region.
    pub cell: ApproxCell,
    /// Partial-product rows (multiplier-operand bit indices) dropped
    /// entirely.
    pub perforated_rows: Vec<usize>,
}

impl ApproxSpec {
    /// An exact multiplier (no approximation).
    pub fn exact() -> Self {
        ApproxSpec::default()
    }

    /// Returns a copy with the given truncated-column count.
    pub fn with_truncate_cols(mut self, n: usize) -> Self {
        self.truncate_cols = n;
        self
    }

    /// Returns a copy with compensation enabled.
    pub fn with_compensation(mut self) -> Self {
        self.compensate = true;
        self
    }

    /// Returns a copy with OR-compressed low columns up to `n`.
    pub fn with_loa_cols(mut self, n: usize) -> Self {
        self.loa_cols = n;
        self
    }

    /// Returns a copy using `cell` for reduction in columns below `n`.
    pub fn with_approx_cols(mut self, n: usize, cell: ApproxCell) -> Self {
        self.approx_cols = n;
        self.cell = cell;
        self
    }

    /// Returns a copy with the given partial-product rows dropped.
    pub fn with_perforated_rows(mut self, rows: &[usize]) -> Self {
        self.perforated_rows = rows.to_vec();
        self
    }

    /// Whether this spec introduces any approximation at all.
    pub fn is_exact(&self) -> bool {
        self.truncate_cols == 0
            && self.loa_cols == 0
            && (self.approx_cols == 0 || self.cell == ApproxCell::Exact)
            && self.perforated_rows.is_empty()
    }
}

/// A `w x w` unsigned array multiplier generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayMultiplier {
    width: usize,
    spec: ApproxSpec,
}

impl ArrayMultiplier {
    /// Creates a generator for a `width x width` multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or above 8 (exhaustive characterization needs
    /// `2 * width <= 16` inputs) or if the spec's column indices exceed the
    /// output width.
    pub fn new(width: usize, spec: ApproxSpec) -> Self {
        assert!((1..=8).contains(&width), "width {width} unsupported");
        let out_bits = 2 * width;
        assert!(spec.truncate_cols <= out_bits, "truncate_cols out of range");
        assert!(spec.loa_cols <= out_bits, "loa_cols out of range");
        assert!(spec.approx_cols <= out_bits, "approx_cols out of range");
        assert!(
            spec.perforated_rows.iter().all(|&r| r < width),
            "perforated row out of range"
        );
        ArrayMultiplier { width, spec }
    }

    /// The operand width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The approximation spec.
    pub fn spec(&self) -> &ApproxSpec {
        &self.spec
    }

    /// Builds the netlist. Inputs are `a[0..w]` then `b[0..w]`
    /// (little-endian); outputs are the `2w` product bits (little-endian).
    pub fn build(&self) -> Netlist {
        let w = self.width;
        let out_bits = 2 * w;
        let spec = &self.spec;
        let mut nl = Netlist::new(2 * w);

        // Partial products by output column: pp(i, j) = a_i AND b_j lands
        // in column i + j.
        let mut cols: Vec<Vec<NodeId>> = vec![Vec::new(); out_bits];
        for j in 0..w {
            if spec.perforated_rows.contains(&j) {
                continue;
            }
            for i in 0..w {
                let c = i + j;
                if c < spec.truncate_cols {
                    continue; // truncated column: drop the partial product
                }
                let ai = nl.input(i);
                let bj = nl.input(w + j);
                let pp = nl.and(ai, bj);
                cols[c].push(pp);
            }
        }

        let mut outputs: Vec<NodeId> = Vec::with_capacity(out_bits);
        let mut carries: Vec<Vec<NodeId>> = vec![Vec::new(); out_bits + 1];
        let zero = nl.constant(false);
        for c in 0..out_bits {
            let mut bits: Vec<NodeId> = Vec::new();
            bits.append(&mut cols[c]);
            let mut incoming = std::mem::take(&mut carries[c]);
            bits.append(&mut incoming);

            if c < spec.truncate_cols {
                // Truncated region: output is constant, possibly with a
                // compensation 1 in the top truncated column.
                let forced = spec.compensate && c + 1 == spec.truncate_cols;
                let out = if forced { nl.constant(true) } else { zero };
                outputs.push(out);
                continue;
            }

            if c < spec.loa_cols {
                // LOA region: OR-compress everything, no carries out.
                let out = match bits.split_first() {
                    None => zero,
                    Some((&first, rest)) => rest.iter().fold(first, |acc, &x| nl.or(acc, x)),
                };
                outputs.push(out);
                continue;
            }

            // Exact / approximate-cell reduction region.
            let cell = if c < spec.approx_cols {
                spec.cell
            } else {
                ApproxCell::Exact
            };
            while bits.len() > 1 {
                if bits.len() >= 3 {
                    let (x, y, z) = (
                        bits.pop().expect("len >= 3"),
                        bits.pop().expect("len >= 3"),
                        bits.pop().expect("len >= 3"),
                    );
                    let (s, cy) = cell.emit(&mut nl, x, y, z);
                    bits.push(s);
                    carries[c + 1].push(cy);
                } else {
                    let (x, y) = (bits.pop().expect("len == 2"), bits.pop().expect("len == 2"));
                    // Half adders stay exact even in the approximate region;
                    // the cells of interest in the literature are full adders.
                    let (s, cy) = half_adder(&mut nl, x, y);
                    bits.push(s);
                    carries[c + 1].push(cy);
                }
            }
            outputs.push(bits.pop().unwrap_or(zero));
        }

        nl.set_outputs(outputs);
        nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_8x8_is_exhaustively_correct() {
        let nl = ArrayMultiplier::new(8, ApproxSpec::exact()).build();
        let table = nl.exhaustive_u16();
        for a in 0..256usize {
            for b in 0..256usize {
                assert_eq!(table[(b << 8) | a] as usize, a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn exact_smaller_widths_are_correct() {
        for w in 1..=6usize {
            let nl = ArrayMultiplier::new(w, ApproxSpec::exact()).build();
            let table = nl.exhaustive();
            for a in 0..1usize << w {
                for b in 0..1usize << w {
                    assert_eq!(table[(b << w) | a] as usize, a * b, "w={w} {a}*{b}");
                }
            }
        }
    }

    #[test]
    fn truncation_underestimates_only() {
        let spec = ApproxSpec::exact().with_truncate_cols(6);
        let nl = ArrayMultiplier::new(8, spec).build();
        let table = nl.exhaustive_u16();
        for a in 0..256usize {
            for b in 0..256usize {
                assert!(
                    (table[(b << 8) | a] as usize) <= a * b,
                    "truncation overestimated {a}*{b}"
                );
            }
        }
    }

    #[test]
    fn truncation_error_is_bounded_by_dropped_mass() {
        let k = 6;
        let spec = ApproxSpec::exact().with_truncate_cols(k);
        let nl = ArrayMultiplier::new(8, spec).build();
        let table = nl.exhaustive_u16();
        // The dropped partial products in columns < k sum to < 2^k * k.
        let bound = (1i64 << k) * k as i64;
        for a in 0..256usize {
            for b in 0..256usize {
                let err = a as i64 * b as i64 - table[(b << 8) | a] as i64;
                assert!(err < bound, "{a}*{b} err {err}");
            }
        }
    }

    #[test]
    fn compensation_reduces_mean_error_magnitude() {
        let base = ApproxSpec::exact().with_truncate_cols(7);
        let comp = base.clone().with_compensation();
        let mean_err = |spec: ApproxSpec| -> f64 {
            let t = ArrayMultiplier::new(8, spec).build().exhaustive_u16();
            let mut sum = 0f64;
            for a in 0..256usize {
                for b in 0..256usize {
                    sum += t[(b << 8) | a] as f64 - (a * b) as f64;
                }
            }
            sum / 65536.0
        };
        let e_plain = mean_err(base);
        let e_comp = mean_err(comp);
        assert!(e_plain < 0.0, "plain truncation biased low, got {e_plain}");
        assert!(
            e_comp.abs() < e_plain.abs(),
            "compensation should shrink bias: {e_plain} -> {e_comp}"
        );
    }

    #[test]
    fn loa_multiplier_errs_but_stays_close() {
        let spec = ApproxSpec::exact().with_loa_cols(6);
        let nl = ArrayMultiplier::new(8, spec).build();
        let table = nl.exhaustive_u16();
        let mut max_err = 0i64;
        let mut any_err = false;
        for a in 0..256usize {
            for b in 0..256usize {
                let err = (table[(b << 8) | a] as i64 - (a * b) as i64).abs();
                any_err |= err > 0;
                max_err = max_err.max(err);
            }
        }
        assert!(any_err);
        // LOA region controls strictly less mass than truncating the same
        // columns plus their carries.
        assert!(max_err < 1 << 9, "max err {max_err}");
    }

    #[test]
    fn sum_not_cout_cells_bias_positive_in_multiplier_context() {
        // The cell is zero-bias over uniform (a, b, cin) triples, but
        // partial products are 0 with probability 3/4, so the `000 -> 1`
        // error row dominates inside a multiplier: data-dependent error
        // structure, exactly the masking effect §IV.B of the paper invokes.
        let spec = ApproxSpec::exact().with_approx_cols(8, ApproxCell::SumNotCout);
        let nl = ArrayMultiplier::new(8, spec).build();
        let table = nl.exhaustive_u16();
        let mut sum = 0f64;
        let mut abs = 0f64;
        for a in 0..256usize {
            for b in 0..256usize {
                let err = table[(b << 8) | a] as f64 - (a * b) as f64;
                sum += err;
                abs += err.abs();
            }
        }
        let bias = sum / 65536.0;
        let mae = abs / 65536.0;
        assert!(mae > 0.0);
        assert!(bias > 0.0, "zero-dominated columns push errors positive");
        assert!(bias.abs() <= mae, "|bias| can never exceed MAE");
    }

    #[test]
    fn perforation_drops_row_mass() {
        let spec = ApproxSpec::exact().with_perforated_rows(&[0]);
        let nl = ArrayMultiplier::new(8, spec).build();
        let table = nl.exhaustive_u16();
        for a in 0..256usize {
            for b in 0..256usize {
                // Dropping row j=0 removes a * b_0 exactly.
                let expect = a * (b & !1);
                assert_eq!(table[(b << 8) | a] as usize, expect, "{a}*{b}");
            }
        }
    }

    #[test]
    fn zero_operand_stays_zero_under_all_specs() {
        let specs = [
            ApproxSpec::exact().with_truncate_cols(8),
            ApproxSpec::exact().with_loa_cols(8),
            ApproxSpec::exact().with_approx_cols(10, ApproxCell::SumIsA),
            ApproxSpec::exact().with_perforated_rows(&[1, 3]),
        ];
        for spec in specs {
            let compensated = spec.compensate;
            let nl = ArrayMultiplier::new(8, spec).build();
            let table = nl.exhaustive_u16();
            if !compensated {
                assert_eq!(table[0], 0, "0*0 must be 0 without compensation");
            }
        }
    }

    #[test]
    fn is_exact_detects_approximation() {
        assert!(ApproxSpec::exact().is_exact());
        assert!(!ApproxSpec::exact().with_truncate_cols(1).is_exact());
        assert!(!ApproxSpec::exact().with_loa_cols(2).is_exact());
        assert!(!ApproxSpec::exact()
            .with_approx_cols(3, ApproxCell::SumIsA)
            .is_exact());
        assert!(!ApproxSpec::exact().with_perforated_rows(&[0]).is_exact());
        // Approx columns with the exact cell is still exact.
        assert!(ApproxSpec::exact()
            .with_approx_cols(5, ApproxCell::Exact)
            .is_exact());
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn width_zero_rejected() {
        let _ = ArrayMultiplier::new(0, ApproxSpec::exact());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_perforation_rejected() {
        let _ = ArrayMultiplier::new(8, ApproxSpec::exact().with_perforated_rows(&[8]));
    }
}
